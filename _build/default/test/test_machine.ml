(* Machine-layer tests: simulator instruction semantics, layout, the
   register allocator under extreme pressure, cycle accounting, and the
   IACA-style static analyzer. *)

open Vapor_ir
module M = Vapor_machine.Minstr
module Mfun = Vapor_machine.Mfun
module Layout = Vapor_machine.Layout
module Simulator = Vapor_machine.Simulator
module Regalloc = Vapor_machine.Regalloc
module Iaca = Vapor_machine.Iaca
module Target = Vapor_targets.Target

let check = Alcotest.check
let fail = Alcotest.fail
let sse = Vapor_targets.Sse.target
let altivec = Vapor_targets.Altivec.target

let mfun ?(n_gpr = 16) ?(n_fpr = 16) ?(n_vr = 16) ?(params = []) instrs =
  {
    Mfun.name = "test";
    instrs = Array.of_list instrs;
    n_gpr;
    n_fpr;
    n_vr;
    param_regs = params;
    fp_unit = Mfun.Fp_scalar_simd;
    stack_bytes = 256;
    n_vspill = 4;
  }

let run ?(target = sse) ?(arrays = []) ?(scalars = []) instrs =
  let layout = Layout.plan ~policy:Layout.aligned_policy arrays in
  let mem = Layout.materialize layout arrays in
  let r = Simulator.run target layout mem (mfun instrs) ~scalar_args:scalars in
  Layout.read_back layout mem arrays;
  r

let f32s n = Buffer_.init Src_type.F32 n (fun i -> Value.Float (float_of_int i))
let i32s n = Buffer_.init Src_type.I32 n (fun i -> Value.Int (i + 1))

(* --- scalar semantics --------------------------------------------------- *)

let test_scalar_wrap () =
  let out = Buffer_.create Src_type.I8 1 in
  ignore
    (run
       ~arrays:[ "out", out ]
       [
         M.Li (M.gpr 0, 100);
         M.Li (M.gpr 1, 30);
         M.Sop (Op.Add, Src_type.I8, M.gpr 2, M.gpr 0, M.gpr 1);
         M.Store (Src_type.I8, M.plain_addr "out", M.gpr 2);
       ]);
  check Alcotest.int "s8 wraps in machine add" (-126)
    (Value.to_int (Buffer_.get out 0))

let test_addressing_modes () =
  let a = i32s 8 in
  let out = Buffer_.create Src_type.I32 1 in
  (* out[0] = a[2*1 + 1] via index*scale + disp *)
  ignore
    (run
       ~arrays:[ "a", a; "out", out ]
       [
         M.Li (M.gpr 0, 1);
         M.Load
           ( Src_type.I32,
             M.gpr 1,
             { M.sym = "a"; base = None; index = Some (M.gpr 0); scale = 8;
               disp = 4 } );
         M.Store (Src_type.I32, M.plain_addr "out", M.gpr 1);
       ]);
  check Alcotest.int "a[3]" 4 (Value.to_int (Buffer_.get out 0))

let test_branching_loop () =
  (* sum 0..9 with a Br loop *)
  let out = Buffer_.create Src_type.I32 1 in
  ignore
    (run
       ~arrays:[ "out", out ]
       [
         M.Li (M.gpr 0, 0) (* i *);
         M.Li (M.gpr 1, 0) (* sum *);
         M.Li (M.gpr 2, 10);
         M.Li (M.gpr 3, 1);
         M.Label 0;
         M.Br (Op.Ge, M.gpr 0, M.gpr 2, 1);
         M.Sop (Op.Add, Src_type.I32, M.gpr 1, M.gpr 1, M.gpr 0);
         M.Sop (Op.Add, Src_type.I32, M.gpr 0, M.gpr 0, M.gpr 3);
         M.Jmp 0;
         M.Label 1;
         M.Store (Src_type.I32, M.plain_addr "out", M.gpr 1);
       ]);
  check Alcotest.int "sum" 45 (Value.to_int (Buffer_.get out 0))

let test_infinite_loop_fuel () =
  match
    Simulator.run ~fuel:1000 sse
      (Layout.plan ~policy:Layout.aligned_policy [])
      (Bytes.create 8192)
      (mfun [ M.Label 0; M.Jmp 0 ])
      ~scalar_args:[]
  with
  | _ -> fail "expected fuel exhaustion"
  | exception Simulator.Fault _ -> ()

(* --- vector semantics --------------------------------------------------- *)

let test_vector_splat_store () =
  let out = Buffer_.create Src_type.F32 4 in
  ignore
    (run
       ~arrays:[ "out", out ]
       [
         M.Lfi (M.fpr 0, 2.5);
         M.Vsplat (Src_type.F32, M.vr 0, M.fpr 0);
         M.VStore (M.VM_aligned, Src_type.F32, M.plain_addr "out", M.vr 0);
       ]);
  check Alcotest.bool "all lanes" true
    (Buffer_.equal out (Buffer_.of_floats Src_type.F32 [| 2.5; 2.5; 2.5; 2.5 |]))

let test_vperm_realign () =
  (* Explicit AltiVec-style realignment of a misaligned f32 window. *)
  let a = f32s 12 in
  let out = Buffer_.create Src_type.F32 4 in
  ignore
    (run ~target:altivec
       ~arrays:[ "a", a; "out", out ]
       [
         (* window a[1..4]: lvx floors both loads; lvsr gives the token *)
         M.VLoad (M.VM_aligned, Src_type.F32,
                  M.vr 0, { (M.plain_addr "a") with M.disp = 4 });
         M.VLoad (M.VM_aligned, Src_type.F32,
                  M.vr 1, { (M.plain_addr "a") with M.disp = 20 });
         M.Lvsr (Src_type.F32, M.vr 2, { (M.plain_addr "a") with M.disp = 4 });
         M.Vperm (Src_type.F32, M.vr 3, M.vr 0, M.vr 1, M.vr 2);
         M.VStore (M.VM_aligned, Src_type.F32, M.plain_addr "out", M.vr 3);
       ]);
  check Alcotest.bool "realigned window" true
    (Buffer_.equal out (Buffer_.of_floats Src_type.F32 [| 1.; 2.; 3.; 4. |]))

let test_aligned_fault_on_sse () =
  let a = f32s 8 in
  match
    run ~target:sse ~arrays:[ "a", a ]
      [
        M.VLoad (M.VM_aligned, Src_type.F32, M.vr 0,
                 { (M.plain_addr "a") with M.disp = 4 });
      ]
  with
  | _ -> fail "expected alignment fault"
  | exception Simulator.Fault _ -> ()

let test_misaligned_load_on_sse () =
  let a = f32s 8 in
  let out = Buffer_.create Src_type.F32 4 in
  ignore
    (run ~target:sse
       ~arrays:[ "a", a; "out", out ]
       [
         M.VLoad (M.VM_misaligned, Src_type.F32, M.vr 0,
                  { (M.plain_addr "a") with M.disp = 4 });
         M.VStore (M.VM_aligned, Src_type.F32, M.plain_addr "out", M.vr 0);
       ]);
  check Alcotest.bool "movdqu window" true
    (Buffer_.equal out (Buffer_.of_floats Src_type.F32 [| 1.; 2.; 3.; 4. |]))

let test_extract_interleave () =
  (* extract stride-2 even/odd then interleave must reproduce the input *)
  let a = i32s 8 in
  let out = Buffer_.create Src_type.I32 8 in
  ignore
    (run
       ~arrays:[ "a", a; "out", out ]
       [
         M.VLoad (M.VM_aligned, Src_type.I32, M.vr 0, M.plain_addr "a");
         M.VLoad (M.VM_aligned, Src_type.I32, M.vr 1,
                  { (M.plain_addr "a") with M.disp = 16 });
         M.Vextract (Src_type.I32, 2, 0, M.vr 2, [ M.vr 0; M.vr 1 ]);
         M.Vextract (Src_type.I32, 2, 1, M.vr 3, [ M.vr 0; M.vr 1 ]);
         M.Vinterleave (M.Lo, Src_type.I32, M.vr 4, M.vr 2, M.vr 3);
         M.Vinterleave (M.Hi, Src_type.I32, M.vr 5, M.vr 2, M.vr 3);
         M.VStore (M.VM_aligned, Src_type.I32, M.plain_addr "out", M.vr 4);
         M.VStore (M.VM_aligned, Src_type.I32,
                   { (M.plain_addr "out") with M.disp = 16 }, M.vr 5);
       ]);
  check Alcotest.bool "interleave . extract = id" true (Buffer_.equal a out)

let test_unpack_pack_roundtrip () =
  let a = Buffer_.of_ints Src_type.I16 [| -3; 7; 1000; -1000; 5; 6; 7; 8 |] in
  let out = Buffer_.create Src_type.I16 8 in
  ignore
    (run
       ~arrays:[ "a", a; "out", out ]
       [
         M.VLoad (M.VM_aligned, Src_type.I16, M.vr 0, M.plain_addr "a");
         M.Vunpack (M.Lo, Src_type.I16, M.vr 1, M.vr 0);
         M.Vunpack (M.Hi, Src_type.I16, M.vr 2, M.vr 0);
         M.Vpack (Src_type.I32, M.vr 3, M.vr 1, M.vr 2);
         M.VStore (M.VM_aligned, Src_type.I16, M.plain_addr "out", M.vr 3);
       ]);
  check Alcotest.bool "pack . unpack = id" true (Buffer_.equal a out)

let test_dot_product () =
  let a = Buffer_.of_ints Src_type.I16 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let b = Buffer_.of_ints Src_type.I16 [| 1; 1; 2; 2; 3; 3; 4; 4 |] in
  let out = Buffer_.create Src_type.I32 4 in
  ignore
    (run
       ~arrays:[ "a", a; "b", b; "out", out ]
       [
         M.VLoad (M.VM_aligned, Src_type.I16, M.vr 0, M.plain_addr "a");
         M.VLoad (M.VM_aligned, Src_type.I16, M.vr 1, M.plain_addr "b");
         M.Li (M.gpr 0, 0);
         M.Vsplat (Src_type.I32, M.vr 2, M.gpr 0);
         M.Vdot (Src_type.I16, M.vr 3, M.vr 0, M.vr 1, M.vr 2);
         M.VStore (M.VM_aligned, Src_type.I32, M.plain_addr "out", M.vr 3);
       ]);
  (* pmaddwd semantics: [1*1+2*1, 3*2+4*2, 5*3+6*3, 7*4+8*4] *)
  check Alcotest.bool "pairwise products" true
    (Buffer_.equal out (Buffer_.of_ints Src_type.I32 [| 3; 14; 33; 60 |]))

let test_vreduce_and_insert () =
  let out = Buffer_.create Src_type.I32 1 in
  ignore
    (run
       ~arrays:[ "out", out ]
       [
         M.Li (M.gpr 0, 5);
         M.Viota (Src_type.I32, M.vr 0, M.gpr 0, 1) (* 5 6 7 8 *);
         M.Li (M.gpr 1, 100);
         M.Vinsert (Src_type.I32, M.vr 1, M.vr 0, 2, M.gpr 1) (* 5 6 100 8 *);
         M.Vreduce (Op.Max, Src_type.I32, M.gpr 2, M.vr 1);
         M.Store (Src_type.I32, M.plain_addr "out", M.gpr 2);
       ]);
  check Alcotest.int "max lane" 100 (Value.to_int (Buffer_.get out 0))

(* --- cycle accounting --------------------------------------------------- *)

let test_cycles_charged () =
  let r1 =
    run [ M.Li (M.gpr 0, 1); M.Li (M.gpr 1, 2);
          M.Sop (Op.Mul, Src_type.I32, M.gpr 2, M.gpr 0, M.gpr 1) ]
  in
  check Alcotest.int "mul is 3 cycles + 2 moves" 5 r1.Simulator.r_cycles;
  let r2 = run [ M.Li (M.gpr 0, 1) ] in
  check Alcotest.int "li is 1 cycle" 1 r2.Simulator.r_cycles

let test_x87_penalty () =
  let instrs =
    [ M.Lfi (M.fpr 0, 1.0); M.Sop (Op.Add, Src_type.F32, M.fpr 1, M.fpr 0, M.fpr 0) ]
  in
  let layout = Layout.plan ~policy:Layout.aligned_policy [] in
  let mem () = Bytes.create 8192 in
  let fast =
    Simulator.run sse layout (mem ()) (mfun instrs) ~scalar_args:[]
  in
  let slow =
    Simulator.run sse layout (mem ())
      { (mfun instrs) with Mfun.fp_unit = Mfun.Fp_x87 }
      ~scalar_args:[]
  in
  check Alcotest.bool "x87 scalar FP costs more" true
    (slow.Simulator.r_cycles > fast.Simulator.r_cycles)

(* --- register allocation under pressure --------------------------------- *)

(* Differential: a suite kernel compiled with a starving register budget
   must compute the same results as with a generous one. *)
let test_regalloc_pressure () =
  let module Suite = Vapor_kernels.Suite in
  let module Flows = Vapor_harness.Flows in
  let module Profile = Vapor_jit.Profile in
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let starved =
        { Profile.gcc4cli with Profile.name = "starved"; reg_fraction = 0.01 }
      in
      let copy args =
        List.map
          (fun (n, a) ->
            match a with
            | Eval.Scalar v -> n, Eval.Scalar v
            | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
          args
      in
      let ref_args = entry.Suite.args ~scale:1 in
      ignore (Eval.run (Suite.kernel entry) ~args:ref_args);
      let got = copy (entry.Suite.args ~scale:1) in
      let entry' =
        { entry with Suite.args = (fun ~scale -> ignore scale; got) }
      in
      let r = Flows.split_vector ~target:sse ~profile:starved entry' ~scale:1 in
      ignore r;
      List.iter2
        (fun (n, b1) (_, b2) ->
          if not (Buffer_.close ~eps:1e-3 b1 b2) then
            fail (name ^ ": array " ^ n ^ " differs under register pressure"))
        (Suite.arrays_of_args ref_args)
        (Suite.arrays_of_args got))
    [ "convolve_s32"; "dct_s32fp"; "interp_s16"; "gemver_fp"; "sad_s8" ]

let test_regalloc_spill_cost () =
  (* Starving the allocator must produce spill traffic: more cycles. *)
  let module Suite = Vapor_kernels.Suite in
  let module Flows = Vapor_harness.Flows in
  let module Profile = Vapor_jit.Profile in
  let entry = Suite.find "convolve_s32" in
  let starved =
    { Profile.gcc4cli with Profile.name = "starved"; reg_fraction = 0.01 }
  in
  let a = Flows.split_vector ~target:sse ~profile:starved entry ~scale:1 in
  let b =
    Flows.split_vector ~target:sse ~profile:Vapor_jit.Profile.gcc4cli entry
      ~scale:1
  in
  check Alcotest.bool "spills cost cycles" true (a.Flows.cycles > b.Flows.cycles)

(* --- layout ------------------------------------------------------------- *)

let test_layout_placement () =
  let a = f32s 4 and b = f32s 4 in
  let layout =
    Layout.plan
      ~policy:(fun name -> if name = "b" then Layout.Offset 3 else Layout.Aligned)
      [ "a", a; "b", b ]
  in
  check Alcotest.int "a aligned" 0 (Layout.base_of layout "a" mod 32);
  check Alcotest.int "b offset" 3 (Layout.base_of layout "b" mod 32);
  let mem = Layout.materialize layout [ "a", a; "b", b ] in
  check
    (Alcotest.float 0.0)
    "b readable at its offset" 1.0
    (Value.to_float
       (Layout.read_value mem Src_type.F32 (Layout.base_of layout "b" + 4)))

let test_layout_roundtrip () =
  let bufs =
    [
      "x", i32s 7;
      "y", f32s 5;
      "z", Buffer_.of_ints Src_type.I8 [| 1; -2; 3 |];
    ]
  in
  let layout = Layout.plan ~policy:Layout.aligned_policy bufs in
  let mem = Layout.materialize layout bufs in
  let copies =
    List.map (fun (n, b) -> n, Buffer_.create b.Buffer_.elem (Buffer_.length b)) bufs
  in
  Layout.read_back layout mem copies;
  List.iter2
    (fun (n, b1) (_, b2) ->
      check Alcotest.bool (n ^ " roundtrips") true (Buffer_.equal b1 b2))
    bufs copies

(* --- IACA --------------------------------------------------------------- *)

let test_iaca_innermost () =
  let f =
    mfun
      [
        M.Li (M.gpr 0, 0);
        M.Label 0;
        M.Br (Op.Ge, M.gpr 0, M.gpr 1, 1);
        (* inner loop with vector work *)
        M.Label 2;
        M.Br (Op.Ge, M.gpr 2, M.gpr 3, 3);
        M.VLoad (M.VM_aligned, Src_type.F32, M.vr 0, M.plain_addr "a");
        M.Vop (Op.Add, Src_type.F32, M.vr 1, M.vr 0, M.vr 0);
        M.VStore (M.VM_aligned, Src_type.F32, M.plain_addr "a", M.vr 1);
        M.Sop (Op.Add, Src_type.I32, M.gpr 2, M.gpr 2, M.gpr 4);
        M.Jmp 2;
        M.Label 3;
        M.Sop (Op.Add, Src_type.I32, M.gpr 0, M.gpr 0, M.gpr 4);
        M.Jmp 0;
        M.Label 1;
      ]
  in
  let regions = Iaca.innermost_regions sse f in
  check Alcotest.int "one innermost region" 1 (List.length regions);
  match Iaca.vector_loop_cycles sse f with
  | Some c -> check Alcotest.bool "positive cycle estimate" true (c >= 1.0)
  | None -> fail "expected a vector loop"

let () =
  Alcotest.run "machine"
    [
      ( "scalar",
        [
          Alcotest.test_case "wrap" `Quick test_scalar_wrap;
          Alcotest.test_case "addressing" `Quick test_addressing_modes;
          Alcotest.test_case "loop" `Quick test_branching_loop;
          Alcotest.test_case "fuel" `Quick test_infinite_loop_fuel;
        ] );
      ( "vector",
        [
          Alcotest.test_case "splat+store" `Quick test_vector_splat_store;
          Alcotest.test_case "vperm realign" `Quick test_vperm_realign;
          Alcotest.test_case "aligned faults on sse" `Quick
            test_aligned_fault_on_sse;
          Alcotest.test_case "misaligned load" `Quick
            test_misaligned_load_on_sse;
          Alcotest.test_case "extract/interleave" `Quick
            test_extract_interleave;
          Alcotest.test_case "unpack/pack" `Quick test_unpack_pack_roundtrip;
          Alcotest.test_case "dot product" `Quick test_dot_product;
          Alcotest.test_case "reduce+insert" `Quick test_vreduce_and_insert;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "charged" `Quick test_cycles_charged;
          Alcotest.test_case "x87 penalty" `Quick test_x87_penalty;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "pressure differential" `Quick
            test_regalloc_pressure;
          Alcotest.test_case "spill cost" `Quick test_regalloc_spill_cost;
        ] );
      ( "layout",
        [
          Alcotest.test_case "placement" `Quick test_layout_placement;
          Alcotest.test_case "roundtrip" `Quick test_layout_roundtrip;
        ] );
      "iaca", [ Alcotest.test_case "innermost" `Quick test_iaca_innermost ];
    ]
