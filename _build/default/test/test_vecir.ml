(* Split-layer tests: idiom semantics of the bytecode evaluator, the
   loop_bound scalarization contract, hint checking, and a QCheck
   round-trip property for the binary codec over random bytecode. *)

open Vapor_ir
module B = Vapor_vecir.Bytecode
module Hint = Vapor_vecir.Hint
module Veval = Vapor_vecir.Veval
module Encode = Vapor_vecir.Encode

let check = Alcotest.check
let fail = Alcotest.fail

(* A minimal kernel shell around a bytecode body operating on arrays a,b,out
   (f32 or as declared) and scalar n. *)
let shell ?(params = []) ?(locals = []) ?(vlocals = []) body =
  {
    B.name = "t";
    params;
    locals;
    vlocals;
    body;
  }

let f32_arr name = Kernel.P_array (name, Src_type.F32)
let i16_arr name = Kernel.P_array (name, Src_type.I16)

let run ?guard_true vk ~mode ~args = Vapor_vecir.Veval.run ?guard_true vk ~mode ~args

(* --- idiom semantics ---------------------------------------------------- *)

let test_init_affine () =
  let out = Buffer_.create Src_type.I32 8 in
  let vk =
    shell
      ~params:[ Kernel.P_array ("out", Src_type.I32) ]
      ~vlocals:[ "v", Src_type.I32 ]
      [
        B.VS_vassign
          ("v", B.V_init_affine (Src_type.I32, B.S_int (Src_type.I32, 5),
                                 B.S_int (Src_type.I32, 3)));
        B.VS_vstore
          { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 0);
            st_ty = Src_type.I32; st_value = B.V_var "v";
            st_hint = Hint.Static 0 };
      ]
  in
  ignore (run vk ~mode:(Veval.Vector 16) ~args:[ "out", Eval.Array out ]);
  check (Alcotest.list Alcotest.int) "affine lanes" [ 5; 8; 11; 14 ]
    (List.init 4 (fun i -> Value.to_int (Buffer_.get out i)))

let test_init_reduc_and_reduce () =
  let vk op expected =
    let out = Buffer_.create Src_type.I32 1 in
    let vk =
      shell
        ~params:[ Kernel.P_array ("out", Src_type.I32) ]
        ~vlocals:[ "v", Src_type.I32 ]
        [
          B.VS_vassign
            ("v", B.V_init_reduc (op, Src_type.I32, B.S_int (Src_type.I32, 42)));
          B.VS_store
            ( "out",
              B.S_int (Src_type.I32, 0),
              B.S_reduc (op, Src_type.I32, B.V_var "v") );
        ]
    in
    ignore (run vk ~mode:(Veval.Vector 16) ~args:[ "out", Eval.Array out ]);
    check Alcotest.int (Op.binop_to_string op) expected
      (Value.to_int (Buffer_.get out 0))
  in
  vk Op.Add 42;
  (* lane0 = 42, others = identity *)
  vk Op.Min 42;
  vk Op.Max 42

let test_widen_mult_halves () =
  (* widen_mult_lo/hi of s16 vectors at VS=16. *)
  let a = Buffer_.of_ints Src_type.I16 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let b = Buffer_.of_ints Src_type.I16 [| 10; 10; 10; 10; 20; 20; 20; 20 |] in
  let out = Buffer_.create Src_type.I32 8 in
  let load name = B.V_load (Src_type.I16, name, B.S_int (Src_type.I32, 0), Hint.Unknown) in
  let vk =
    shell
      ~params:[ i16_arr "a"; i16_arr "b"; Kernel.P_array ("out", Src_type.I32) ]
      [
        B.VS_vstore
          { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 0);
            st_ty = Src_type.I32;
            st_value = B.V_widen_mult (B.Lo, Src_type.I16, load "a", load "b");
            st_hint = Hint.Unknown };
        B.VS_vstore
          { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 4);
            st_ty = Src_type.I32;
            st_value = B.V_widen_mult (B.Hi, Src_type.I16, load "a", load "b");
            st_hint = Hint.Unknown };
      ]
  in
  ignore
    (run vk ~mode:(Veval.Vector 16)
       ~args:
         [ "a", Eval.Array a; "b", Eval.Array b; "out", Eval.Array out ]);
  check (Alcotest.list Alcotest.int) "widened products"
    [ 10; 20; 30; 40; 100; 120; 140; 160 ]
    (List.init 8 (fun i -> Value.to_int (Buffer_.get out i)))

let test_loop_bound_modes () =
  (* for (i = loop_bound(8, 0); i < loop_bound(16, 4); i++) out[i] = 1 *)
  let make () = Buffer_.create Src_type.I32 16 in
  let vk =
    shell
      ~params:[ Kernel.P_array ("out", Src_type.I32) ]
      ~locals:[ "i", Src_type.I32 ]
      [
        B.VS_for
          {
            B.index = "i";
            lo = B.S_loop_bound (B.S_int (Src_type.I32, 8), B.S_int (Src_type.I32, 0));
            hi = B.S_loop_bound (B.S_int (Src_type.I32, 16), B.S_int (Src_type.I32, 4));
            step = B.S_int (Src_type.I32, 1);
            kind = B.L_scalar;
            group = 1;
            body =
              [
                B.VS_store ("out", B.S_var "i", B.S_int (Src_type.I32, 1));
              ];
          };
      ]
  in
  let vec = make () in
  ignore (run vk ~mode:(Veval.Vector 16) ~args:[ "out", Eval.Array vec ]);
  let sc = make () in
  ignore (run vk ~mode:Veval.Scalarized ~args:[ "out", Eval.Array sc ]);
  let ones b = List.filter_map (fun i ->
      if Value.to_int (Buffer_.get b i) = 1 then Some i else None)
      (List.init 16 Fun.id)
  in
  check (Alcotest.list Alcotest.int) "vector mode range" [8;9;10;11;12;13;14;15] (ones vec);
  check (Alcotest.list Alcotest.int) "scalar mode range" [0;1;2;3] (ones sc)

let test_scalarized_rejects_vector_code () =
  let vk =
    shell
      ~params:[ f32_arr "a" ]
      ~vlocals:[ "v", Src_type.F32 ]
      [ B.VS_vassign ("v", B.V_load (Src_type.F32, "a", B.S_int (Src_type.I32, 0), Hint.Unknown)) ]
  in
  let a = Buffer_.create Src_type.F32 8 in
  match run vk ~mode:Veval.Scalarized ~args:[ "a", Eval.Array a ] with
  | _ -> fail "expected error for vector code in scalarized mode"
  | exception Veval.Error _ -> ()

let test_hint_violation_detected () =
  let a = Buffer_.create Src_type.F32 8 in
  let vk =
    shell
      ~params:[ f32_arr "a" ]
      ~vlocals:[ "v", Src_type.F32 ]
      [
        B.VS_vassign
          ("v", B.V_load (Src_type.F32, "a", B.S_int (Src_type.I32, 1),
                          Hint.Static 0));
      ]
  in
  match run vk ~mode:(Veval.Vector 16) ~args:[ "a", Eval.Array a ] with
  | _ -> fail "expected hint contradiction"
  | exception Veval.Error _ -> ()

let test_aload_misaligned_rejected () =
  let a = Buffer_.create Src_type.F32 8 in
  let vk =
    shell
      ~params:[ f32_arr "a" ]
      ~vlocals:[ "v", Src_type.F32 ]
      [ B.VS_vassign ("v", B.V_aload (Src_type.F32, "a", B.S_int (Src_type.I32, 2))) ]
  in
  match run vk ~mode:(Veval.Vector 16) ~args:[ "a", Eval.Array a ] with
  | _ -> fail "expected aload alignment error"
  | exception Veval.Error _ -> ()

let test_guard_selects_branch () =
  let out = Buffer_.create Src_type.I32 1 in
  let store v =
    [ B.VS_store ("out", B.S_int (Src_type.I32, 0), B.S_int (Src_type.I32, v)) ]
  in
  let vk =
    shell
      ~params:[ Kernel.P_array ("out", Src_type.I32) ]
      [
        B.VS_version
          { B.guard = B.G_arrays_aligned [ "out" ]; vec = store 1;
            fallback = store 2 };
      ]
  in
  ignore (run vk ~mode:(Veval.Vector 16) ~args:[ "out", Eval.Array out ]);
  check Alcotest.int "guard true" 1 (Value.to_int (Buffer_.get out 0));
  ignore
    (run
       ~guard_true:(fun _ -> false)
       vk ~mode:(Veval.Vector 16) ~args:[ "out", Eval.Array out ]);
  check Alcotest.int "guard false" 2 (Value.to_int (Buffer_.get out 0))

(* --- codec: random-bytecode round trip ---------------------------------- *)

let gen_ty =
  QCheck.Gen.oneofl
    [ Src_type.I8; Src_type.I16; Src_type.I32; Src_type.U8; Src_type.U16;
      Src_type.F32; Src_type.F64 ]

let gen_binop =
  QCheck.Gen.oneofl Op.[ Add; Sub; Mul; Div; Min; Max; And; Or; Xor; Lt; Ge ]

let gen_hint =
  QCheck.Gen.(
    oneof
      [
        return Hint.Unknown;
        map (fun m -> Hint.Static m) (int_range 0 31);
        map (fun m -> Hint.Peeled m) (int_range 0 31);
      ])

let gen_name = QCheck.Gen.(map (Printf.sprintf "v%d") (int_range 0 9))

let rec gen_sexpr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map2 (fun ty v -> B.S_int (ty, v)) gen_ty (int_range (-1000) 1000);
        map2 (fun ty v -> B.S_float (ty, v)) gen_ty (float_range (-10.0) 10.0);
        map (fun n -> B.S_var n) gen_name;
        map (fun ty -> B.S_get_vf ty) gen_ty;
        map (fun ty -> B.S_align_limit ty) gen_ty;
      ]
  else
    oneof
      [
        gen_sexpr 0;
        map3 (fun op a b -> B.S_binop (op, a, b)) gen_binop
          (gen_sexpr (depth - 1)) (gen_sexpr (depth - 1));
        map2 (fun ty a -> B.S_convert (ty, a)) gen_ty (gen_sexpr (depth - 1));
        map2 (fun a b -> B.S_loop_bound (a, b)) (gen_sexpr (depth - 1))
          (gen_sexpr (depth - 1));
        map2 (fun n i -> B.S_load (n, i)) gen_name (gen_sexpr (depth - 1));
      ]

let rec gen_vexpr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> B.V_var n) gen_name;
        map2 (fun ty v -> B.V_init_uniform (ty, v)) gen_ty (gen_sexpr 1);
        map3
          (fun ty n h -> B.V_load (ty, n, B.S_var "i", h))
          gen_ty gen_name gen_hint;
      ]
  else
    oneof
      [
        gen_vexpr 0;
        map3 (fun op (ty, a) b -> B.V_binop (op, ty, a, b)) gen_binop
          (pair gen_ty (gen_vexpr (depth - 1)))
          (gen_vexpr (depth - 1));
        map3
          (fun h (ty, a) b ->
            B.V_realign
              { B.r_ty = ty; r_v1 = a; r_v2 = b;
                r_rt = B.V_get_rt (ty, "a", B.S_var "i", h);
                r_arr = "a"; r_idx = B.S_var "i"; r_hint = h })
          gen_hint
          (pair gen_ty (gen_vexpr (depth - 1)))
          (gen_vexpr (depth - 1));
        map2 (fun ty (a, b) -> B.V_pack (ty, a, b)) gen_ty
          (pair (gen_vexpr (depth - 1)) (gen_vexpr (depth - 1)));
        map
          (fun parts ->
            B.V_extract
              { B.e_ty = Src_type.I16; e_stride = List.length parts;
                e_offset = 0; e_parts = parts })
          (list_size (int_range 1 3) (gen_vexpr 0));
      ]

let gen_stmt depth =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun n e -> B.VS_assign (n, e)) gen_name (gen_sexpr depth);
      map2 (fun n e -> B.VS_vassign (n, e)) gen_name (gen_vexpr depth);
      map3
        (fun n (ty, h) v ->
          B.VS_vstore
            { B.st_arr = n; st_idx = B.S_var "i"; st_ty = ty; st_value = v;
              st_hint = h })
        gen_name (pair gen_ty gen_hint) (gen_vexpr depth);
    ]

let gen_vkernel =
  let open QCheck.Gen in
  let* stmts = list_size (int_range 1 8) (gen_stmt 2) in
  let* wrap = bool in
  let body =
    if wrap then
      [
        B.VS_for
          { B.index = "i"; lo = B.S_int (Src_type.I32, 0);
            hi = B.S_var "n"; step = B.S_get_vf Src_type.F32;
            kind = B.L_vector; group = 2; body = stmts };
        B.VS_version
          { B.guard = B.G_arrays_aligned [ "a"; "b" ]; vec = stmts;
            fallback = [ B.VS_if (B.S_var "n", stmts, []) ] };
      ]
    else stmts
  in
  return
    (shell
       ~params:[ f32_arr "a"; Kernel.P_scalar ("n", Src_type.I32) ]
       ~locals:[ "i", Src_type.I32 ]
       ~vlocals:[ "v0", Src_type.F32 ]
       body)

let prop_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode/decode round trip"
    (QCheck.make gen_vkernel)
    (fun vk -> Encode.decode (Encode.encode vk) = vk)

let prop_codec_stable =
  QCheck.Test.make ~count:100 ~name:"re-encoding is stable"
    (QCheck.make gen_vkernel)
    (fun vk ->
      let e = Encode.encode vk in
      Encode.encode (Encode.decode e) = e)

let test_codec_truncation () =
  let vk = shell ~params:[ f32_arr "a" ] [] in
  let e = Encode.encode vk in
  match Encode.decode (String.sub e 0 (String.length e - 1)) with
  | _ -> fail "expected decode error on truncated input"
  | exception Encode.Decode_error _ -> ()

(* --- algebraic laws of the idioms, on random vectors -------------------- *)

let gen_lanes = QCheck.Gen.(array_size (return 8) (int_range (-1000) 1000))

let prop_interleave_extract_inverse =
  QCheck.Test.make ~count:100 ~name:"extract even/odd of interleave = id"
    (QCheck.make QCheck.Gen.(pair gen_lanes gen_lanes))
    (fun (la, lb) ->
      let a = Buffer_.of_ints Src_type.I16 (Array.map (fun v -> v land 0x7ff) la) in
      let b = Buffer_.of_ints Src_type.I16 (Array.map (fun v -> v land 0x7ff) lb) in
      let load n = B.V_load (Src_type.I16, n, B.S_int (Src_type.I32, 0), Hint.Unknown) in
      let lo = B.V_interleave (B.Lo, Src_type.I16, load "a", load "b") in
      let hi = B.V_interleave (B.Hi, Src_type.I16, load "a", load "b") in
      let evens =
        B.V_extract { B.e_ty = Src_type.I16; e_stride = 2; e_offset = 0;
                      e_parts = [ lo; hi ] }
      in
      let odds =
        B.V_extract { B.e_ty = Src_type.I16; e_stride = 2; e_offset = 1;
                      e_parts = [ lo; hi ] }
      in
      let vk out_expr =
        shell
          ~params:[ i16_arr "a"; i16_arr "b"; i16_arr "out" ]
          [ B.VS_vstore
              { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 0);
                st_ty = Src_type.I16; st_value = out_expr;
                st_hint = Hint.Unknown } ]
      in
      let run_one expr =
        let out = Buffer_.create Src_type.I16 8 in
        ignore
          (run (vk expr) ~mode:(Veval.Vector 16)
             ~args:[ "a", Eval.Array (Buffer_.copy a);
                     "b", Eval.Array (Buffer_.copy b);
                     "out", Eval.Array out ]);
        out
      in
      Buffer_.equal (run_one evens) a && Buffer_.equal (run_one odds) b)

let prop_pack_unpack_inverse =
  QCheck.Test.make ~count:100 ~name:"pack(unpack_lo, unpack_hi) = id"
    (QCheck.make gen_lanes)
    (fun lanes ->
      let a = Buffer_.of_ints Src_type.I16 lanes in
      let load = B.V_load (Src_type.I16, "a", B.S_int (Src_type.I32, 0), Hint.Unknown) in
      let packed =
        B.V_pack
          ( Src_type.I32,
            B.V_unpack (B.Lo, Src_type.I16, load),
            B.V_unpack (B.Hi, Src_type.I16, load) )
      in
      let out = Buffer_.create Src_type.I16 8 in
      let vk =
        shell
          ~params:[ i16_arr "a"; i16_arr "out" ]
          [ B.VS_vstore
              { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 0);
                st_ty = Src_type.I16; st_value = packed;
                st_hint = Hint.Unknown } ]
      in
      ignore
        (run vk ~mode:(Veval.Vector 16)
           ~args:[ "a", Eval.Array (Buffer_.copy a); "out", Eval.Array out ]);
      Buffer_.equal out a)

let prop_dot_product_is_pairwise =
  QCheck.Test.make ~count:100 ~name:"dot_product = pairwise widen-mult sums"
    (QCheck.make QCheck.Gen.(pair gen_lanes gen_lanes))
    (fun (la, lb) ->
      let a = Buffer_.of_ints Src_type.I16 la in
      let b = Buffer_.of_ints Src_type.I16 lb in
      let load n = B.V_load (Src_type.I16, n, B.S_int (Src_type.I32, 0), Hint.Unknown) in
      let zero = B.V_init_uniform (Src_type.I32, B.S_int (Src_type.I32, 0)) in
      let dot = B.V_dot_product (Src_type.I16, load "a", load "b", zero) in
      let out = Buffer_.create Src_type.I32 4 in
      let vk =
        shell
          ~params:[ i16_arr "a"; i16_arr "b"; Kernel.P_array ("out", Src_type.I32) ]
          [ B.VS_vstore
              { B.st_arr = "out"; st_idx = B.S_int (Src_type.I32, 0);
                st_ty = Src_type.I32; st_value = dot; st_hint = Hint.Unknown } ]
      in
      ignore
        (run vk ~mode:(Veval.Vector 16)
           ~args:[ "a", Eval.Array a; "b", Eval.Array b;
                   "out", Eval.Array out ]);
      let ok = ref true in
      for l = 0 to 3 do
        let va i = Value.to_int (Buffer_.get a i) in
        let vb i = Value.to_int (Buffer_.get b i) in
        let expect = (va (2 * l) * vb (2 * l)) + (va ((2 * l) + 1) * vb ((2 * l) + 1)) in
        if Value.to_int (Buffer_.get out l) <> Src_type.normalize_int Src_type.I32 expect
        then ok := false
      done;
      !ok)

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vecir"
    [
      ( "idioms",
        [
          Alcotest.test_case "init_affine" `Quick test_init_affine;
          Alcotest.test_case "init_reduc/reduce" `Quick
            test_init_reduc_and_reduce;
          Alcotest.test_case "widen_mult halves" `Quick
            test_widen_mult_halves;
          Alcotest.test_case "loop_bound modes" `Quick test_loop_bound_modes;
          Alcotest.test_case "scalarized guard" `Quick
            test_scalarized_rejects_vector_code;
          Alcotest.test_case "hint violation" `Quick
            test_hint_violation_detected;
          Alcotest.test_case "aload misaligned" `Quick
            test_aload_misaligned_rejected;
          Alcotest.test_case "version guard" `Quick test_guard_selects_branch;
        ] );
      qsuite "codec-props" [ prop_codec_roundtrip; prop_codec_stable ];
      qsuite "idiom-laws"
        [
          prop_interleave_extract_inverse; prop_pack_unpack_inverse;
          prop_dot_product_is_pairwise;
        ];
      ( "codec",
        [ Alcotest.test_case "truncation" `Quick test_codec_truncation ] );
    ]
