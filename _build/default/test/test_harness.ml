(* Harness tests: the experiment pipelines must reproduce the paper's
   qualitative shapes (who wins, by roughly what factor, and where the
   anomalies fall).  These are the claims EXPERIMENTS.md reports. *)

module E = Vapor_harness.Experiments
module Flows = Vapor_harness.Flows
module Suite = Vapor_kernels.Suite
module Profile = Vapor_jit.Profile

let check = Alcotest.check
let fail = Alcotest.fail
let sse = Vapor_targets.Sse.target
let altivec = Vapor_targets.Altivec.target
let neon = Vapor_targets.Neon.target
let scale = 1

let value rows name =
  match List.find_opt (fun (r : E.row) -> r.E.kernel = name) rows with
  | Some r -> r.E.value
  | None -> fail ("missing row " ^ name)

let in_range what lo hi v =
  if not (v >= lo && v <= hi) then
    fail (Printf.sprintf "%s = %.2f outside [%.2f, %.2f]" what v lo hi)

(* --- Figure 5 ------------------------------------------------------------ *)

let fig5a = lazy (E.fig5 ~target:sse ~scale)
let fig5b = lazy (E.fig5 ~target:altivec ~scale)

let test_fig5a_mean () =
  let _, mean = Lazy.force fig5a in
  (* paper: overall impact comparable to native, skewed >1 by x87 scalars *)
  in_range "fig5a mean" 1.0 2.0 mean

let test_fig5a_x87_inflation () =
  let rows, _ = Lazy.force fig5a in
  (* fp kernels show "overly high vectorization speedups" on x86 *)
  List.iter
    (fun k -> in_range ("fig5a " ^ k) 1.3 3.0 (value rows k))
    [ "dscal_fp"; "saxpy_fp"; "sfir_fp"; "dissolve_fp" ]

let test_fig5b_homogeneous () =
  let rows, _ = Lazy.force fig5b in
  (* paper: most speedups within ~15% of native on AltiVec *)
  let close =
    List.filter
      (fun (r : E.row) -> r.E.value >= 0.8 && r.E.value <= 1.2)
      rows
  in
  if List.length close * 10 < List.length rows * 6 then
    fail "fewer than 60% of AltiVec impacts within 20% of native"

let test_fig5b_mix_streams_high () =
  let rows, _ = Lazy.force fig5b in
  (* versioning lets the JIT emit the aligned version: much better than
     the natively-vectorized misaligned code *)
  in_range "fig5b mix_streams" 1.5 8.0 (value rows "mix_streams_s16")

(* --- Figure 6 ------------------------------------------------------------ *)

let fig6a = lazy (E.fig6 ~target:sse ~scale)
let fig6b = lazy (E.fig6 ~target:altivec ~scale)
let fig6c = lazy (E.fig6 ~target:neon ~scale)

let test_fig6_means () =
  let _, a = Lazy.force fig6a in
  let _, b = Lazy.force fig6b in
  let _, c = Lazy.force fig6c in
  (* paper: harmonic means in the 0.8x..1x range *)
  in_range "fig6a harmonic mean" 0.75 1.10 a;
  in_range "fig6b harmonic mean" 0.75 1.10 b;
  in_range "fig6c harmonic mean" 0.75 1.15 c

let test_fig6_majority_near_one () =
  List.iter
    (fun (tag, fig) ->
      let rows, _ = Lazy.force fig in
      let near =
        List.filter (fun (r : E.row) -> r.E.value >= 0.85 && r.E.value <= 1.15) rows
      in
      if List.length near * 10 < List.length rows * 7 then
        fail (tag ^ ": fewer than 70% of ratios near 1x"))
    [ "fig6a", fig6a; "fig6b", fig6b; "fig6c", fig6c ]

let test_fig6_sad_degraded () =
  (* unresolvable alignment guard: split slower than native *)
  let rows_a, _ = Lazy.force fig6a in
  let rows_b, _ = Lazy.force fig6b in
  in_range "fig6a sad" 1.02 4.0 (value rows_a "sad_s8");
  in_range "fig6b sad" 1.02 4.0 (value rows_b "sad_s8")

let test_fig6_mix_streams_faster () =
  (* versioning beats the native compiler's misaligned-only code *)
  let rows_a, _ = Lazy.force fig6a in
  let rows_b, _ = Lazy.force fig6b in
  in_range "fig6a mix" 0.3 0.99 (value rows_a "mix_streams_s16");
  in_range "fig6b mix" 0.05 0.99 (value rows_b "mix_streams_s16")

let test_fig6c_neon_lib_fallback () =
  (* dissolve and dct pay library-helper overhead on the immature NEON
     backend; other kernels do not *)
  let rows, _ = Lazy.force fig6c in
  in_range "fig6c dissolve_s8" 1.2 4.0 (value rows "dissolve_s8");
  in_range "fig6c dct" 1.05 3.0 (value rows "dct_s32fp");
  in_range "fig6c saxpy" 0.9 1.1 (value rows "saxpy_fp")

let test_fig6b_doubles_scalarized () =
  (* AltiVec has no f64: both flows scalarize, ratio stays ~1 *)
  let rows, _ = Lazy.force fig6b in
  in_range "fig6b dscal_dp" 0.9 1.1 (value rows "dscal_dp");
  in_range "fig6b saxpy_dp" 0.9 1.1 (value rows "saxpy_dp")

(* --- Table 3 -------------------------------------------------------------- *)

let test_table3_shape () =
  let rows = E.table3 () in
  check Alcotest.int "eight kernels" 8 (List.length rows);
  List.iter
    (fun (r : E.table3_row) ->
      if Float.is_nan r.E.t3_native || Float.is_nan r.E.t3_split then
        fail (r.E.t3_kernel ^ ": missing IACA estimate");
      (* split never beats native, and stays within ~2x (paper's worst) *)
      if r.E.t3_split < r.E.t3_native -. 0.01 then
        fail (r.E.t3_kernel ^ ": split below native");
      if r.E.t3_split > 2.5 *. r.E.t3_native then
        fail (r.E.t3_kernel ^ ": split more than 2.5x native"))
    rows;
  (* reduction kernels lose accumulator promotion in the split flow *)
  let sfir = List.find (fun r -> r.E.t3_kernel = "sfir_fp") rows in
  if sfir.E.t3_split <= sfir.E.t3_native then
    fail "sfir_fp: expected extra split cycles from unpromoted accumulator"

(* --- ablation -------------------------------------------------------------- *)

let test_ablation_altivec () =
  let _, mean = E.ablation ~target:altivec ~scale in
  (* paper: average degradation factor of 2.5x across benchmarks *)
  in_range "AltiVec ablation mean" 1.5 4.5 mean

let test_ablation_sse_mild () =
  let _, mean = E.ablation ~target:sse ~scale in
  (* misaligned accesses exist on SSE, so the penalty is much smaller *)
  in_range "SSE ablation mean" 0.9 1.8 mean

(* --- design-choice ablations -------------------------------------------- *)

let test_design_ablations () =
  let rows = E.design_ablations ~target:altivec ~scale in
  let factor choice kernel =
    match
      List.find_opt
        (fun (r : E.design_ablation_row) ->
          r.E.da_choice = choice && r.E.da_kernel = kernel)
        rows
    with
    | Some r -> r.E.da_factor
    | None -> fail ("missing ablation row " ^ choice ^ "/" ^ kernel)
  in
  (* each design choice must pay for itself on its showcase kernel *)
  in_range "slp" 2.0 20.0 (factor "slp re-rolling" "mix_streams_s16");
  in_range "dot_product" 1.1 4.0 (factor "dot_product idiom" "sfir_s16");
  in_range "outer" 1.3 6.0 (factor "outer-loop vectorization" "alvinn_s32fp");
  in_range "unroll" 2.0 20.0 (factor "const-trip unrolling" "convolve_s32");
  in_range "realign reuse" 1.02 3.0 (factor "realignment reuse" "jacobi_fp")

(* --- compile stats ---------------------------------------------------------- *)

let test_compile_stats () =
  let rows, size_avg, x86_avg, ppc_avg = E.compile_stats () in
  check Alcotest.int "all paper kernels present"
    (List.length Suite.dsp_kernels + List.length Suite.polybench_kernels)
    (List.length rows);
  (* paper: ~5x bytecode growth, 4.85x/5.37x JIT-time growth *)
  in_range "size ratio" 3.0 10.0 size_avg;
  in_range "jit time x86" 3.0 8.0 x86_avg;
  in_range "jit time ppc" 3.0 8.0 ppc_avg;
  List.iter
    (fun (r : E.compile_stats_row) ->
      if r.E.cs_size_ratio < 1.0 then
        fail (r.E.cs_kernel ^ ": vectorized bytecode smaller than scalar"))
    rows

let test_jit_time_proportional_to_size () =
  (* Section V-A.c: compile time proportional to bytecode size. *)
  let entry = Suite.find "mmm_fp" in
  let r = Flows.vectorized_bytecode entry in
  let module Compile = Vapor_jit.Compile in
  let v = Compile.compile ~target:sse ~profile:Profile.mono
      r.Vapor_vectorizer.Driver.vkernel in
  let s = Compile.compile ~target:sse ~profile:Profile.mono
      r.Vapor_vectorizer.Driver.scalar_bytecode in
  let size_ratio =
    float_of_int (Vapor_vecir.Encode.size r.Vapor_vectorizer.Driver.vkernel)
    /. float_of_int
         (Vapor_vecir.Encode.size r.Vapor_vectorizer.Driver.scalar_bytecode)
  in
  let time_ratio = v.Compile.compile_time_us /. s.Compile.compile_time_us in
  in_range "time ratio tracks size ratio" (0.4 *. size_ratio)
    (2.5 *. size_ratio) time_ratio

(* --- scalar execution overhead ---------------------------------------------- *)

let test_scalarization_no_overhead () =
  (* The loop_bound design: scalarizing vectorized bytecode must cost at
     most a few percent over compiling scalar bytecode. *)
  let target = Vapor_targets.Scalar_target.target in
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let v = Flows.split_vector ~target ~profile:Profile.gcc4cli entry ~scale in
      let s = Flows.split_scalar ~target ~profile:Profile.gcc4cli entry ~scale in
      in_range (name ^ " scalarization overhead")
        0.9 1.10
        (float_of_int v.Flows.cycles /. float_of_int s.Flows.cycles))
    [ "saxpy_fp"; "sfir_s16"; "jacobi_fp"; "mmm_fp"; "dissolve_s8" ]

let () =
  Alcotest.run "harness"
    [
      ( "fig5",
        [
          Alcotest.test_case "5a mean" `Quick test_fig5a_mean;
          Alcotest.test_case "5a x87 inflation" `Quick
            test_fig5a_x87_inflation;
          Alcotest.test_case "5b homogeneous" `Quick test_fig5b_homogeneous;
          Alcotest.test_case "5b mix_streams high" `Quick
            test_fig5b_mix_streams_high;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "harmonic means" `Quick test_fig6_means;
          Alcotest.test_case "majority near 1x" `Quick
            test_fig6_majority_near_one;
          Alcotest.test_case "sad degraded" `Quick test_fig6_sad_degraded;
          Alcotest.test_case "mix_streams faster" `Quick
            test_fig6_mix_streams_faster;
          Alcotest.test_case "neon lib fallback" `Quick
            test_fig6c_neon_lib_fallback;
          Alcotest.test_case "altivec doubles" `Quick
            test_fig6b_doubles_scalarized;
        ] );
      "table3", [ Alcotest.test_case "shape" `Quick test_table3_shape ];
      ( "ablation",
        [
          Alcotest.test_case "altivec 2.5x-ish" `Quick test_ablation_altivec;
          Alcotest.test_case "sse mild" `Quick test_ablation_sse_mild;
        ] );
      ( "design-ablations",
        [ Alcotest.test_case "choices pay off" `Quick test_design_ablations ]
      );
      ( "compile-stats",
        [
          Alcotest.test_case "ratios" `Quick test_compile_stats;
          Alcotest.test_case "time tracks size" `Quick
            test_jit_time_proportional_to_size;
        ] );
      ( "scalarization",
        [
          Alcotest.test_case "no overhead" `Quick
            test_scalarization_no_overhead;
        ] );
    ]
