(* Analysis-library tests: polynomial normal forms, access classification,
   dependence verdicts, scalar classification, and alignment arithmetic. *)

open Vapor_ir
module Poly = Vapor_analysis.Poly
module Access = Vapor_analysis.Access
module Dependence = Vapor_analysis.Dependence
module Scalar_class = Vapor_analysis.Scalar_class
module Alignment = Vapor_analysis.Alignment
module Fe = Vapor_frontend

let check = Alcotest.check
let fail = Alcotest.fail

(* Parse an expression in a context with arrays a,b and scalars i,j,k,n,m. *)
let expr src =
  let k =
    Printf.sprintf
      "kernel t(f32 a[], f32 b[], s32 i, s32 j, s32 k, s32 n, s32 m, s32 x) { x = %s; }"
      src
  in
  match (Fe.Typecheck.compile_one k).Kernel.body with
  | [ Stmt.Assign (_, e) ] -> e
  | _ -> fail "bad expr fixture"

let poly src =
  match Poly.of_expr (expr src) with
  | Some p -> p
  | None -> fail ("not a polynomial: " ^ src)

(* --- Poly --------------------------------------------------------------- *)

let test_poly_const_diff () =
  let cases =
    [
      "i * n + j + 1", "i * n + j", Some 1;
      "j * n + i", "i * n + j", None;
      "4 * i + 3", "4 * i", Some 3;
      "(i + 1) * n", "i * n + n", Some 0;
      "2 * (i + j)", "2 * i + 2 * j", Some 0;
      "i * i", "i", None;
    ]
  in
  List.iter
    (fun (a, b, expected) ->
      check
        (Alcotest.option Alcotest.int)
        (a ^ " - " ^ b) expected
        (Poly.const_diff (poly a) (poly b)))
    cases

let test_poly_linear_in () =
  (match Poly.linear_in "i" (poly "i * n + j") with
  | Some (0, _) | None -> () (* symbolic stride must not report linear *)
  | Some (s, _) -> fail (Printf.sprintf "i*n reported stride %d in i" s));
  (match Poly.linear_in "j" (poly "i * n + j") with
  | Some (1, rest) ->
    check (Alcotest.option Alcotest.int) "rest is i*n" None (Poly.to_const rest)
  | _ -> fail "j stride");
  (match Poly.linear_in "i" (poly "4 * i + 2") with
  | Some (4, rest) ->
    check (Alcotest.option Alcotest.int) "base" (Some 2) (Poly.to_const rest)
  | _ -> fail "4i+2");
  match Poly.linear_in "i" (poly "i * i") with
  | None -> ()
  | Some _ -> fail "quadratic must not be linear"

let test_poly_known_mod () =
  check (Alcotest.option Alcotest.int) "8k+2 mod 8" (Some 2)
    (Poly.known_mod 8 (poly "8 * k + 2"));
  check (Alcotest.option Alcotest.int) "8k+2 mod 16" None
    (Poly.known_mod 16 (poly "8 * k + 2"));
  check (Alcotest.option Alcotest.int) "-3 mod 8 positive" (Some 5)
    (Poly.known_mod 8 (poly "8 * k - 3"));
  check (Alcotest.option Alcotest.int) "k mod 8" None
    (Poly.known_mod 8 (poly "k"))

let test_poly_algebra () =
  check Alcotest.bool "mul distributes" true
    (Poly.equal
       (poly "(i + 2) * (j + 3)")
       (poly "i * j + 3 * i + 2 * j + 6"));
  check Alcotest.bool "sub cancels" true
    (Poly.equal (poly "i * n - i * n") Poly.zero)

let prop_diff_self_zero =
  QCheck.Test.make ~count:200 ~name:"p - p = 0"
    QCheck.(list_of_size (Gen.int_range 0 4) (pair (int_range 0 2) (int_range (-5) 5)))
    (fun terms ->
      let vars = [| "i"; "j"; "n" |] in
      let p =
        List.fold_left
          (fun acc (v, c) ->
            Poly.add acc (Poly.scale c (Poly.var vars.(v))))
          (Poly.const 7) terms
      in
      Poly.const_diff p p = Some 0)

(* --- Access ------------------------------------------------------------- *)

let elem_of _ = Src_type.F32

let classify src =
  let _, stride, _ = Access.classify_subscript ~index:"i" (expr src) in
  Access.stride_to_string stride

let test_access_classify () =
  check Alcotest.string "unit" "unit" (classify "i + 3");
  check Alcotest.string "unit with symbolic base" "unit" (classify "k * n + i");
  check Alcotest.string "invariant" "invariant" (classify "j * n + 4");
  check Alcotest.string "strided" "strided(2)" (classify "2 * i + 1");
  check Alcotest.string "symbolic stride" "complex" (classify "i * n");
  check Alcotest.string "negative" "complex" (classify "n - i")

(* --- Dependence --------------------------------------------------------- *)

let body_of src =
  let k =
    Printf.sprintf
      "kernel t(f32 a[], f32 b[], s32 j, s32 k, s32 n, s32 m) { for (i = 0; i < n; i++) { %s } }"
      src
  in
  match (Fe.Typecheck.compile_one k).Kernel.body with
  | [ Stmt.For { body; _ } ] -> body
  | _ -> fail "bad body fixture"

let verdict src =
  let accesses =
    Access.collect ~index:"i" ~elem_of (body_of src)
  in
  match Dependence.check accesses with
  | Dependence.Safe -> "safe"
  | Dependence.Unsafe _ -> "unsafe"

let test_dependence () =
  check Alcotest.string "rmw same index" "safe"
    (verdict "a[i] = a[i] + 1.0;");
  check Alcotest.string "distance 1" "unsafe"
    (verdict "a[i] = a[i - 1] + 1.0;");
  check Alcotest.string "forward distance" "unsafe"
    (verdict "a[i] = a[i + 2] + 1.0;");
  check Alcotest.string "different arrays" "safe"
    (verdict "a[i] = b[i + 5] + 1.0;");
  check Alcotest.string "interleaved lanes never meet" "safe"
    (verdict "a[2 * i] = a[2 * i + 1] + 1.0;");
  check Alcotest.string "symbolic distance" "unsafe"
    (verdict "a[i] = a[i + n] + 1.0;");
  check Alcotest.string "invariant load of stored array" "unsafe"
    (verdict "a[i] = a[k] + 1.0;");
  check Alcotest.string "same fixed cell rmw" "safe"
    (verdict "a[k] = a[k] + 1.0;")

(* --- Scalar_class ------------------------------------------------------- *)

let classify_scalars src =
  let reductions, privates, blocker =
    Scalar_class.classify ~index:"i" (body_of src)
  in
  ( List.map (fun r -> r.Scalar_class.var) reductions,
    privates,
    Option.is_some blocker )

let test_scalar_class () =
  let r, p, b = classify_scalars "j = j + 1;" in
  check (Alcotest.list Alcotest.string) "sum reduction" [ "j" ] r;
  check (Alcotest.list Alcotest.string) "no privates" [] p;
  check Alcotest.bool "no blocker" false b;
  let r, p, b = classify_scalars "k = 2; m = k + m;" in
  check (Alcotest.list Alcotest.string) "m reduction" [ "m" ] r;
  check (Alcotest.list Alcotest.string) "k private" [ "k" ] p;
  check Alcotest.bool "no blocker" false b;
  (* first touch is a kill, then self-updates: private, like convolve's acc *)
  let r, p, b = classify_scalars "k = 0; k = k + 1; k = k + 2; a[i] = (f32)k;" in
  check (Alcotest.list Alcotest.string) "no reductions" [] r;
  check (Alcotest.list Alcotest.string) "k private" [ "k" ] p;
  check Alcotest.bool "no blocker" false b;
  (* read before any assignment: carried *)
  let _, _, b = classify_scalars "a[i] = (f32)k; k = k + 1;" in
  check Alcotest.bool "carried blocks" true b;
  (* reduction accumulator also read: partial sums observable *)
  let _, _, b = classify_scalars "j = j + 1; a[i] = (f32)j;" in
  check Alcotest.bool "read accumulator blocks" true b;
  (* min reduction *)
  let r, _, _ = classify_scalars "m = min(m, k);" in
  check (Alcotest.list Alcotest.string) "min reduction" [ "m" ] r;
  (* mul is not a supported reduction *)
  let _, _, b = classify_scalars "m = m * 2;" in
  check Alcotest.bool "mul blocks" true b

(* --- Alignment ---------------------------------------------------------- *)

let test_alignment () =
  check (Alcotest.option Alcotest.int) "f32 at 8k+2" (Some 8)
    (Alignment.misalign_bytes ~elem:Src_type.F32 (poly "8 * k + 2"));
  check (Alcotest.option Alcotest.int) "f32 at i" None
    (Alignment.misalign_bytes ~elem:Src_type.F32 (poly "i"));
  check (Alcotest.option Alcotest.int) "s8 at 3" (Some 3)
    (Alignment.misalign_bytes ~elem:Src_type.I8 (poly "3"));
  check (Alcotest.option Alcotest.int) "relative, symbolic base" (Some 4)
    (Alignment.relative_misalign_bytes ~elem:Src_type.F32
       ~anchor:(poly "i * n") (poly "i * n + 1"));
  check (Alcotest.option Alcotest.int) "relative negative wraps" (Some 28)
    (Alignment.relative_misalign_bytes ~elem:Src_type.F32
       ~anchor:(poly "i * n") (poly "i * n - 1"));
  check (Alcotest.option Alcotest.int) "relative unknown" None
    (Alignment.relative_misalign_bytes ~elem:Src_type.F32
       ~anchor:(poly "i * n") (poly "i * m"))

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "analysis"
    [
      ( "poly",
        [
          Alcotest.test_case "const_diff" `Quick test_poly_const_diff;
          Alcotest.test_case "linear_in" `Quick test_poly_linear_in;
          Alcotest.test_case "known_mod" `Quick test_poly_known_mod;
          Alcotest.test_case "algebra" `Quick test_poly_algebra;
        ] );
      qsuite "poly-props" [ prop_diff_self_zero ];
      "access", [ Alcotest.test_case "classify" `Quick test_access_classify ];
      "dependence", [ Alcotest.test_case "verdicts" `Quick test_dependence ];
      ( "scalar_class",
        [ Alcotest.test_case "classification" `Quick test_scalar_class ] );
      "alignment", [ Alcotest.test_case "misalign" `Quick test_alignment ];
    ]
