(* vaporc: command-line driver for the split-vectorization toolchain.

     vaporc list                          enumerate benchmark kernels
     vaporc dump-ir -k saxpy_fp           parsed + type-checked IR
     vaporc vectorize -k saxpy_fp         offline stage: bytecode + report
     vaporc lower -k saxpy_fp -t sse      online stage: machine code
     vaporc run -k saxpy_fp -t altivec    compile + simulate, print cycles
     vaporc stat -k saxpy_fp              bytecode size statistics
     vaporc serve-replay -t sse           tiered runtime + code cache replay
     vaporc jit-report                    JIT cost profiler, per kernel/target
     vaporc experiments                   regenerate the paper's figures

   Kernels come from the built-in suite (-k) or from a file containing
   kernel-language source (-f). *)

open Cmdliner
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Options = Vapor_vectorizer.Options
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Targets = Vapor_targets.Scalar_target
module E = Vapor_harness.Experiments
module R = Vapor_harness.Report
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service
module Stats = Vapor_runtime.Stats
module Store = Vapor_store.Store
module Serve = Vapor_serve.Serve
module Workload = Vapor_serve.Workload
module Ingress = Vapor_serve.Ingress

(* --- name resolution ----------------------------------------------------
   Unknown kernel/target names are user errors, not internal ones: print
   the valid names and exit 2 (cmdliner reserves 124 for conversion
   errors, so names are resolved here rather than in an Arg.conv). *)

let die_unknown ~what ~given ~valid : 'a =
  Printf.eprintf "vaporc: unknown %s '%s'\nvalid %ss are: %s\n" what given
    what (String.concat ", " valid);
  exit 2

let target_names =
  List.map (fun t -> t.Vapor_targets.Target.name) Targets.all

let resolve_target ?vl name =
  let t =
    try Targets.find name
    with Invalid_argument _ ->
      die_unknown ~what:"target" ~given:name ~valid:target_names
  in
  (* Pin late-bound targets (SVE) to a concrete vector length here so
     every downstream name-keyed cache and report sees the resolved
     spelling; a --vl that contradicts a fixed-width target is a user
     error. *)
  try Vapor_targets.Target.resolve ?vl:(Option.map (fun b -> b / 8) vl) t
  with Invalid_argument msg ->
    Printf.eprintf "vaporc: %s\n" msg;
    exit 2

let resolve_kernel name =
  try Suite.find name
  with Invalid_argument _ ->
    die_unknown ~what:"kernel" ~given:name
      ~valid:(List.map (fun e -> e.Suite.name) Suite.all)

(* A non-positive batch flag is a user error: exit 2 with the usage line
   (zero or negative windows/caps have no meaning in the formation
   model). *)
let resolve_positive ~flag v : int =
  if v <= 0 then begin
    Printf.eprintf
      "vaporc: --%s must be a positive integer (got %d)\n\
       usage: --%s N with N >= 1 (--max-batch 1 disables batching)\n"
      flag v flag;
    exit 2
  end
  else v

(* A bad --store path is a user error like an unknown name: exit 2 with
   the reason.  Replay commands create a missing directory ([create]);
   `vaporc cache` never does — verifying or listing a store that isn't
   there must not conjure an empty one. *)
let open_store_or_die ?max_entries ?max_bytes ~create path =
  match Store.open_store ?max_entries ?max_bytes ~create path with
  | Ok s -> s
  | Error msg ->
    Printf.eprintf "vaporc: %s\n" msg;
    exit 2

(* --- common arguments --------------------------------------------------- *)

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "k"; "kernel" ] ~docv:"NAME" ~doc:"Benchmark-suite kernel name.")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Kernel-language source file.")

let target_arg =
  Arg.(
    value
    & opt string "sse"
    & info [ "t"; "target" ] ~docv:"TARGET"
        ~doc:
          (Printf.sprintf
             "Target: %s. Late-bound targets also accept a pinned spelling \
              (sve128, sve256, sve512)."
             (String.concat ", " target_names)))

let vl_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "vl" ] ~docv:"BITS"
        ~doc:
          "Pin a late-bound target's vector length in bits (SVE: 128, 256, \
           or 512); rejected if it contradicts a fixed-width target.")

let profile_arg =
  let the_profile_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "mono" -> Ok Profile.mono
          | "gcc4cli" -> Ok Profile.gcc4cli
          | "native" -> Ok Profile.native
          | "avx-split" -> Ok Profile.avx_split
          | other -> Error (`Msg ("unknown profile " ^ other))),
        fun fmt p -> Format.pp_print_string fmt p.Profile.name )
  in
  Arg.(
    value
    & opt the_profile_conv Profile.gcc4cli
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Codegen profile: mono, gcc4cli, native, or avx-split.")

let no_hints_arg =
  Arg.(
    value & flag
    & info [ "no-hints" ]
        ~doc:"Disable alignment hints/versioning/peeling (the ablation).")

let alias_checks_arg =
  Arg.(
    value & flag
    & info [ "alias-checks" ]
        ~doc:
          "Version vectorized loops on runtime array disjointness instead \
           of assuming restrict semantics.")

let scale_arg =
  Arg.(
    value & opt int 2
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Workload scale factor.")

let load_kernel kernel file : Vapor_ir.Kernel.t * Suite.entry option =
  match kernel, file with
  | Some name, None ->
    let entry = resolve_kernel name in
    Suite.kernel entry, Some entry
  | None, Some path ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Vapor_frontend.Typecheck.compile_one src, None
  | Some _, Some _ -> failwith "give either --kernel or --file, not both"
  | None, None -> failwith "a kernel is required: --kernel NAME or --file FILE"

let opts_of no_hints alias_checks =
  let base = if no_hints then Options.no_hints else Options.default in
  { base with Options.alias_checks }

(* --- commands ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-18s %s%s\n" e.Suite.name
          (String.concat ", " e.Suite.features)
          (if e.Suite.polybench then "  [polybench]" else ""))
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark-suite kernels.")
    Term.(const run $ const ())

let dump_ir_cmd =
  let run kernel file =
    let k, _ = load_kernel kernel file in
    print_string (Vapor_ir.Ir_print.kernel_to_string k)
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the type-checked scalar IR of a kernel.")
    Term.(const run $ kernel_arg $ file_arg)

let vectorize_cmd =
  let run kernel file no_hints alias_checks =
    let k, _ = load_kernel kernel file in
    let result = Driver.vectorize ~opts:(opts_of no_hints alias_checks) k in
    Printf.printf "--- vectorization report ---\n%s\n\n"
      (Driver.report_to_string result);
    Printf.printf "--- vectorized bytecode ---\n%s"
      (Vapor_vecir.Vec_print.to_string result.Driver.vkernel)
  in
  Cmd.v
    (Cmd.info "vectorize"
       ~doc:"Run the offline stage and print the split-layer bytecode.")
    Term.(const run $ kernel_arg $ file_arg $ no_hints_arg $ alias_checks_arg)

let lower_cmd =
  let run kernel file no_hints target profile vl =
    let target = resolve_target ?vl target in
    let k, _ = load_kernel kernel file in
    let result = Driver.vectorize ~opts:(opts_of no_hints false) k in
    let compiled = Compile.compile ~target ~profile result.Driver.vkernel in
    print_string (Vapor_machine.Mfun.to_string compiled.Compile.mfun);
    List.iteri
      (fun i d ->
        Printf.printf "; region %d: %s\n" i
          (match d with
          | Vapor_jit.Lower.Vectorize -> "vectorized"
          | Vapor_jit.Lower.Scalarize reason -> "scalarized (" ^ reason ^ ")"))
      compiled.Compile.decisions;
    Printf.printf "; modeled JIT compile time: %.1f us (%d bytecode nodes)\n"
      compiled.Compile.compile_time_us compiled.Compile.bytecode_nodes
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:"Run the online stage and print target machine code.")
    Term.(
      const run $ kernel_arg $ file_arg $ no_hints_arg $ target_arg
      $ profile_arg $ vl_arg)

let run_cmd =
  let run kernel no_hints target profile scale vl =
    let target = resolve_target ?vl target in
    let entry = resolve_kernel (Option.value ~default:"saxpy_fp" kernel) in
    let module Flows = Vapor_harness.Flows in
    let r =
      Flows.split_vector
        ~opts:(opts_of no_hints false)
        ~target ~profile entry ~scale
    in
    let s = Flows.split_scalar ~target ~profile entry ~scale in
    Printf.printf
      "%s on %s (%s): %d cycles vectorized (%s), %d cycles scalar, speedup %.2fx\n"
      entry.Suite.name target.Vapor_targets.Target.name profile.Profile.name
      r.Flows.cycles
      (if r.Flows.vectorized then "vector code" else "scalarized")
      s.Flows.cycles
      (float_of_int s.Flows.cycles /. float_of_int r.Flows.cycles)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile a suite kernel and simulate it.")
    Term.(
      const run $ kernel_arg $ no_hints_arg $ target_arg $ profile_arg
      $ scale_arg $ vl_arg)

let conform_cmd =
  let digest_arg =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:
            "Also print one content digest per kernel over the JIT output \
             buffers, with no target column — so listings from different \
             vector lengths of one late-bound target can be diffed for \
             cross-VL bit-identity.")
  in
  let run kernel no_hints target profile scale vl digest =
    let target = resolve_target ?vl target in
    let module Buffer_ = Vapor_ir.Buffer_ in
    let module Eval = Vapor_ir.Eval in
    let module Veval = Vapor_vecir.Veval in
    let entries =
      match kernel with Some n -> [ resolve_kernel n ] | None -> Suite.all
    in
    let opts = opts_of no_hints false in
    let n_fail = ref 0 in
    List.iter
      (fun (entry : Suite.entry) ->
        let result = Driver.vectorize ~opts (Suite.kernel entry) in
        let vk = result.Driver.vkernel in
        let args = entry.Suite.args ~scale in
        let ref_args =
          List.map
            (fun (n, a) ->
              match a with
              | Eval.Scalar v -> n, Eval.Scalar v
              | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
            args
        in
        let verdict =
          match
            let compiled = Compile.compile ~target ~profile vk in
            ignore (Vapor_harness.Exec.run target compiled ~args)
          with
          | () ->
            let mode =
              if Vapor_targets.Target.has_simd target then
                Veval.Vector target.Vapor_targets.Target.vs
              else Veval.Scalarized
            in
            ignore (Veval.run vk ~mode ~args:ref_args);
            let ok =
              List.for_all2
                (fun (_, a) (_, b) ->
                  match a, b with
                  | Eval.Array x, Eval.Array y -> Buffer_.equal x y
                  | _, _ -> true)
                args ref_args
            in
            if ok then "OK" else "MISMATCH"
          | exception e -> Printf.sprintf "ERROR (%s)" (Printexc.to_string e)
        in
        if verdict <> "OK" then incr n_fail;
        if digest then
          let d =
            if Vapor_vecir.Bytecode.has_fp_reduction vk then
              (* stable marker: bits legitimately follow the VL here *)
              "fp-reduction (vl-variant)       "
            else
              Digest.to_hex
                (Digest.string
                   (String.concat "|"
                      (List.map
                         (fun (n, a) ->
                           match a with
                           | Eval.Array b ->
                             n ^ ":" ^ Format.asprintf "%a" Buffer_.pp b
                           | Eval.Scalar _ -> n)
                         args)))
          in
          Printf.printf "%-18s %s %s\n" entry.Suite.name d verdict
        else
          Printf.printf "%-18s %-8s %-8s %s\n" entry.Suite.name
            target.Vapor_targets.Target.name profile.Profile.name verdict)
      entries;
    if !n_fail > 0 then begin
      Printf.printf "conformance: %d kernel(s) diverged on %s/%s\n" !n_fail
        target.Vapor_targets.Target.name profile.Profile.name;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Differential conformance: run kernels through the JIT and \
          bit-compare every output array against the reference interpreter \
          (all suite kernels unless --kernel is given); exit 1 on any \
          divergence.")
    Term.(
      const run $ kernel_arg $ no_hints_arg $ target_arg $ profile_arg
      $ scale_arg $ vl_arg $ digest_arg)

let stat_cmd =
  let run kernel file =
    let k, _ = load_kernel kernel file in
    let result = Driver.vectorize k in
    let vec = Vapor_vecir.Encode.size result.Driver.vkernel in
    let scalar = Vapor_vecir.Encode.size result.Driver.scalar_bytecode in
    Printf.printf
      "scalar bytecode: %d bytes\nvectorized bytecode: %d bytes\nratio: %.2fx\n"
      scalar vec
      (float_of_int vec /. float_of_int scalar)
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Bytecode size statistics for a kernel.")
    Term.(const run $ kernel_arg $ file_arg)

let encode_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the encoded bytecode here (default: NAME.vbc).")
  in
  let run kernel file no_hints out =
    let k, _ = load_kernel kernel file in
    let result = Driver.vectorize ~opts:(opts_of no_hints false) k in
    let bytes = Vapor_vecir.Encode.encode result.Driver.vkernel in
    let path = Option.value ~default:(k.Vapor_ir.Kernel.name ^ ".vbc") out in
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    Printf.printf "wrote %d bytes of vectorized bytecode to %s\n"
      (String.length bytes) path
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Vectorize and write the binary split-layer bytecode to a file.")
    Term.(const run $ kernel_arg $ file_arg $ no_hints_arg $ out_arg)

let disasm_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Encoded bytecode file (.vbc).")
  in
  let run path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let bytes = really_input_string ic n in
    close_in ic;
    let vk = Vapor_vecir.Encode.decode bytes in
    print_string (Vapor_vecir.Vec_print.to_string vk)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Decode a binary bytecode file and print it as text.")
    Term.(const run $ path_arg)

let serve_replay_cmd =
  let length_arg =
    Arg.(
      value & opt int 400
      & info [ "length" ] ~docv:"N" ~doc:"Number of trace events to replay.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Trace PRNG seed (replays are \
                                        deterministic per seed).")
  in
  let hotness_arg =
    Arg.(
      value & opt int 3
      & info [ "hotness" ] ~docv:"N"
          ~doc:"Interpreter invocations before a kernel body is promoted \
                to the JIT tier.")
  in
  let cache_entries_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Code-cache entry budget (LRU beyond this).")
  in
  let cache_bytes_arg =
    Arg.(
      value & opt int (256 * 1024)
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:"Code-cache modeled byte budget (LRU beyond this).")
  in
  let rejuvenate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rejuvenate-to" ] ~docv:"TARGET"
          ~doc:"Mid-replay, re-lower all cached code from the primary \
                target to $(docv) and redirect traffic (Revec-style \
                rejuvenation).")
  in
  let rejuvenate_at_arg =
    Arg.(
      value & opt int 200
      & info [ "rejuvenate-at" ] ~docv:"EVENT"
          ~doc:"Trace event index at which rejuvenation fires.")
  in
  let kernels_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kernels" ] ~docv:"NAMES"
          ~doc:"Comma-separated suite kernels for the trace (default: the \
                standard mix).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Shard the replay across $(docv) OCaml domains (the trace is \
                partitioned by kernel digest; the merged report is \
                identical for any $(docv)).")
  in
  let engine_arg =
    Arg.(
      value & opt string "fast"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Execution engine: 'fast' (slot-compiled bodies and \
                pre-resolved plans) or 'reference' (tree-walking \
                interpreter and instruction-by-instruction simulator). \
                Reports are identical; only wall-clock differs.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the report as JSON instead of the text tables.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured span trace of the replay to $(docv) as \
             JSONL: one replay_event root span per trace event, with \
             cache_lookup/compile/exec/oracle child spans and \
             pipeline-stage leaf spans beneath it.")
  in
  let trace_det_arg =
    Arg.(
      value & flag
      & info [ "trace-deterministic" ]
          ~doc:
            "Omit wall-clock fields from the span trace, leaving only the \
             deterministic ordinal clock — the trace is then \
             byte-identical for any --domains value.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry (counters, histograms, and \
             observability gauges) to $(docv): Prometheus text format, or \
             JSON when $(docv) ends in .json.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent code store: in-memory cache misses probe $(docv) \
             before compiling, and every compile publishes write-through, \
             so a second run over the same workload performs zero JIT \
             compiles.  Created if missing.")
  in
  let run target profile length seed hotness cache_entries cache_bytes
      rejuvenate rejuvenate_at kernels domains engine json trace_out
      trace_deterministic metrics_out store_dir =
    let target = resolve_target target in
    let store = Option.map (open_store_or_die ~create:true) store_dir in
    let engine =
      match Vapor_runtime.Tiered.engine_of_string engine with
      | Some e -> e
      | None ->
        die_unknown ~what:"engine" ~given:engine ~valid:[ "fast"; "reference" ]
    in
    let kernels =
      Option.map (List.map (fun n -> (resolve_kernel n).Suite.name)) kernels
    in
    let trace =
      Trace.standard ~seed ?kernels ~length ~n_targets:1 ()
    in
    let cfg =
      {
        (Service.default_config ~targets:[ target ]) with
        Service.cfg_profile = profile;
        cfg_hotness = hotness;
        cfg_max_entries = cache_entries;
        cfg_max_bytes = cache_bytes;
        cfg_rejuvenate =
          Option.map
            (fun name -> rejuvenate_at, target, resolve_target name)
            rejuvenate;
        cfg_engine = engine;
        cfg_store = store;
      }
    in
    let stats = Stats.create () in
    let tracer =
      match trace_out with
      | None -> Vapor_obs.Tracer.disabled
      | Some _ -> Vapor_obs.Tracer.create ~wall:(not trace_deterministic) ()
    in
    let report = Service.replay_sharded ~stats ~tracer ~domains cfg trace in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Vapor_obs.Tracer.to_jsonl tracer);
        close_out oc)
      trace_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (if Filename.check_suffix path ".json" then Stats.to_json stats
           else Stats.to_prometheus stats);
        close_out oc)
      metrics_out;
    if json then print_string (Service.report_to_json report)
    else begin
      Printf.printf "serve-replay on %s (%s profile, hotness %d)\n"
        target.Vapor_targets.Target.name profile.Profile.name hotness;
      Service.print_report report;
      Printf.printf "runtime metrics:\n%s" (Stats.to_table stats)
    end
  in
  Cmd.v
    (Cmd.info "serve-replay"
       ~doc:
         "Replay a seeded synthetic workload through the tiered runtime \
          (interpreter -> JIT promotion, content-addressed code cache) and \
          print throughput, amortized compile cost, and cache statistics.")
    Term.(
      const run $ target_arg $ profile_arg $ length_arg $ seed_arg
      $ hotness_arg $ cache_entries_arg $ cache_bytes_arg $ rejuvenate_arg
      $ rejuvenate_at_arg $ kernels_arg $ domains_arg $ engine_arg
      $ json_arg $ trace_out_arg $ trace_det_arg $ metrics_out_arg
      $ store_arg)

let chaos_replay_cmd =
  let length_arg =
    Arg.(
      value & opt int 400
      & info [ "length" ] ~docv:"N" ~doc:"Number of trace events to replay.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for BOTH the trace and the fault injector: the same \
                seed reproduces the same faults at the same trace points.")
  in
  let hotness_arg =
    Arg.(
      value & opt int 3
      & info [ "hotness" ] ~docv:"N"
          ~doc:"Interpreter invocations before a kernel body is promoted \
                to the JIT tier.")
  in
  let no_faults_arg =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Disable fault injection and the oracle entirely; the \
                output is then byte-identical to serve-replay.")
  in
  let corrupt_rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "corrupt-rate" ] ~docv:"P"
          ~doc:"Probability a cache-delivered body is corrupted.")
  in
  let compile_fault_rate_arg =
    Arg.(
      value & opt float 0.25
      & info [ "compile-fault-rate" ] ~docv:"P"
          ~doc:"Probability a compile attempt takes an injected transient \
                fault.")
  in
  let drop_simd_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop-simd-at" ] ~docv:"EVENT"
          ~doc:"Trace event index at which the serving target loses SIMD \
                capability (rejuvenates down to scalar).")
  in
  let oracle_every_arg =
    Arg.(
      value & opt int 1
      & info [ "oracle-every" ] ~docv:"N"
          ~doc:"Differential-oracle sampling period in JIT runs (1 checks \
                every run, guaranteeing zero escaped wrong outputs).")
  in
  let retry_budget_arg =
    Arg.(
      value & opt int 3
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"Compile retry attempts against injected transient faults.")
  in
  let store_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent code store to replay against (created if missing); \
             combine with --store-corrupt-rate to exercise the \
             disk-corruption path.")
  in
  let store_corrupt_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "store-corrupt-rate" ] ~docv:"P"
          ~doc:
            "Probability a persistent-store read comes back with mangled \
             bytes; the store's checksum verification must detect it, \
             quarantine the entry, and recompile.")
  in
  let streams_arg =
    Arg.(
      value & opt int 0
      & info [ "streams" ] ~docv:"N"
          ~doc:
            "Drive the chaos workload through the serving engine split \
             across $(docv) streams (0 = plain replay).  Enables the \
             serving-shaped faults below and extends the verdict with \
             lost-event accounting.")
  in
  let stall_rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "stall-rate" ] ~docv:"P"
          ~doc:
            "Probability the consumer of a served response stalls, \
             holding its lane (serving mode only).")
  in
  let disconnect_rate_arg =
    Arg.(
      value & opt float 0.2
      & info [ "disconnect-rate" ] ~docv:"P"
          ~doc:
            "Probability (per stream) of a mid-stream disconnect \
             (serving mode only).")
  in
  let deadline_exhaust_rate_arg =
    Arg.(
      value & opt float 0.02
      & info [ "deadline-exhaust-rate" ] ~docv:"P"
          ~doc:
            "Probability (per dispatched event) that its deadline budget \
             is burned before execution (serving mode only).")
  in
  let run target profile length seed hotness no_faults corrupt_rate
      compile_fault_rate drop_simd_at oracle_every retry_budget store_dir
      store_corrupt_rate streams stall_rate disconnect_rate
      deadline_exhaust_rate =
    let target = resolve_target target in
    let store = Option.map (open_store_or_die ~create:true) store_dir in
    let trace = Trace.standard ~seed ~length ~n_targets:1 () in
    let serving = streams > 0 in
    let faults =
      if no_faults then None
      else
        Some
          (Vapor_runtime.Faults.make
             {
               Vapor_runtime.Faults.default_spec with
               f_seed = seed;
               f_corrupt_rate = corrupt_rate;
               f_compile_fault_rate = compile_fault_rate;
               f_max_transient = 2;
               f_drop_simd_at = drop_simd_at;
               f_store_corrupt_rate = store_corrupt_rate;
               f_stall_rate = (if serving then stall_rate else 0.0);
               f_disconnect_rate = (if serving then disconnect_rate else 0.0);
               f_deadline_exhaust_rate =
                 (if serving then deadline_exhaust_rate else 0.0);
             })
    in
    let guard =
      match faults with
      | None -> Vapor_runtime.Tiered.no_guard
      | Some f ->
        {
          Vapor_runtime.Tiered.g_oracle =
            Some
              {
                Vapor_runtime.Tiered.op_first_run = true;
                op_sample_every = max 1 oracle_every;
              };
          g_faults = Some f;
          g_retry_budget = retry_budget;
        }
    in
    let cfg =
      {
        (Service.default_config ~targets:[ target ]) with
        Service.cfg_profile = profile;
        cfg_hotness = hotness;
        cfg_guard = guard;
        cfg_drop_simd =
          (if no_faults then None
           else
             Option.map (fun at -> at, Targets.find "scalar") drop_simd_at);
        cfg_store = store;
      }
    in
    let stats = Stats.create () in
    if serving then begin
      let wl = Workload.of_trace ~streams trace in
      let serve_cfg = { (Serve.default_cfg cfg) with Serve.sv_faults = faults } in
      let rep = Serve.run ~stats serve_cfg wl in
      Printf.printf
        "chaos-serve on %s (%s profile, hotness %d, seed %d, %d streams)\n"
        target.Vapor_targets.Target.name profile.Profile.name hotness seed
        streams;
      if not no_faults then
        Printf.printf
          "  faults: corrupt %.2f, compile-fault %.2f, stall %.2f, \
           disconnect %.2f, deadline-exhaust %.2f\n"
          corrupt_rate compile_fault_rate stall_rate disconnect_rate
          deadline_exhaust_rate;
      Serve.print_report rep;
      Printf.printf "runtime metrics:\n%s" (Stats.to_table stats);
      let escaped =
        rep.Serve.sr_service.Service.rp_oracle_mismatches
        - rep.Serve.sr_service.Service.rp_quarantines
      in
      let mismatch_escape = Option.is_some faults && escaped > 0 in
      if mismatch_escape || rep.Serve.sr_lost <> 0 then begin
        Printf.printf
          "chaos verdict: FAIL — %d mismatch(es) without quarantine, %d \
           lost event(s) outside shedding/timeout/disconnect accounting\n"
          (max 0 escaped) rep.Serve.sr_lost;
        exit 1
      end
      else
        Printf.printf
          "chaos verdict: OK — every arrival accounted (%d answered, %d \
           shed, %d timed out, %d disconnected, 0 lost, 0 wrong outputs)\n"
          rep.Serve.sr_answered
          (rep.Serve.sr_shed_ingress + rep.Serve.sr_shed_overload)
          (rep.Serve.sr_deadline_misses + rep.Serve.sr_stream_deadline_misses
         + rep.Serve.sr_injected_exhaustions)
          rep.Serve.sr_disconnected
    end
    else begin
      let report = Service.replay ~stats cfg trace in
      (if no_faults then
         (* No faults, no oracle: this IS a serve-replay, printed
            byte-identically so the healthy path is provably unchanged. *)
         Printf.printf "serve-replay on %s (%s profile, hotness %d)\n"
           target.Vapor_targets.Target.name profile.Profile.name hotness
       else begin
         Printf.printf "chaos-replay on %s (%s profile, hotness %d, seed %d)\n"
           target.Vapor_targets.Target.name profile.Profile.name hotness seed;
         Printf.printf
           "  faults: corrupt %.2f, compile-fault %.2f, drop-simd %s, \
            oracle every %d run(s), retry budget %d\n"
           corrupt_rate compile_fault_rate
           (match drop_simd_at with
           | Some at -> Printf.sprintf "@%d" at
           | None -> "off")
           (max 1 oracle_every) retry_budget;
         if store_corrupt_rate > 0.0 then
           Printf.printf "  store faults: corrupt %.2f on probe reads\n"
             store_corrupt_rate
       end);
      Service.print_report report;
      Printf.printf "runtime metrics:\n%s" (Stats.to_table stats);
      match faults with
      | None -> ()
      | Some _ ->
        let escaped =
          report.Service.rp_oracle_mismatches - report.Service.rp_quarantines
        in
        if escaped > 0 then begin
          Printf.printf
            "chaos verdict: FAIL — %d mismatch(es) without quarantine\n"
            escaped;
          exit 1
        end
        else
          Printf.printf
            "chaos verdict: OK — every injected fault was absorbed \
             (%d corrupted, %d injected compile faults, %d quarantines, \
             %d retries, 0 wrong outputs)\n"
            report.Service.rp_corrupted_bodies
            report.Service.rp_injected_compile report.Service.rp_quarantines
            report.Service.rp_retries
    end
  in
  Cmd.v
    (Cmd.info "chaos-replay"
       ~doc:
         "Replay the standard trace while deterministically injecting \
          faults (corrupted cached bodies, transient compile failures, \
          mid-trace SIMD loss) with the differential oracle checking \
          every JIT run: the runtime must absorb every fault with zero \
          wrong outputs.")
    Term.(
      const run $ target_arg $ profile_arg $ length_arg $ seed_arg
      $ hotness_arg $ no_faults_arg $ corrupt_rate_arg
      $ compile_fault_rate_arg $ drop_simd_arg $ oracle_every_arg
      $ retry_budget_arg $ store_dir_arg $ store_corrupt_rate_arg
      $ streams_arg $ stall_rate_arg $ disconnect_rate_arg
      $ deadline_exhaust_rate_arg)

(* --- vaporc serve / serve-bench: the resilient serving layer ------------
   Both drive the same deterministic virtual-time engine (lib/serve), so
   CI needs no sockets: serve-bench synthesizes a multi-stream load from
   the seeded trace generator; serve executes a line-based script (from
   stdin or --script) describing streams and events. *)

let backlog_of n = if n <= 0 then None else Some n

let resolve_policy name =
  match Ingress.policy_of_string name with
  | Some p -> p
  | None -> die_unknown ~what:"policy" ~given:name ~valid:[ "block"; "shed" ]

let serve_verdict (rep : Serve.report) ~chaos =
  let escaped =
    rep.Serve.sr_service.Service.rp_oracle_mismatches
    - rep.Serve.sr_service.Service.rp_quarantines
  in
  if (chaos && escaped > 0) || rep.Serve.sr_lost <> 0 then begin
    Printf.printf
      "serve verdict: FAIL — %d mismatch(es) without quarantine, %d lost \
       event(s)\n"
      (max 0 escaped) rep.Serve.sr_lost;
    exit 1
  end
  else
    Printf.printf
      "serve verdict: OK — every arrival accounted (%d answered, %d shed, \
       %d timed out, %d disconnected, 0 lost)\n"
      rep.Serve.sr_answered
      (rep.Serve.sr_shed_ingress + rep.Serve.sr_shed_overload
     + rep.Serve.sr_crash_shed)
      (rep.Serve.sr_deadline_misses + rep.Serve.sr_stream_deadline_misses
     + rep.Serve.sr_injected_exhaustions + rep.Serve.sr_lane_stalls)
      rep.Serve.sr_disconnected

let serve_bench_cmd =
  let length_arg =
    Arg.(
      value & opt int 400
      & info [ "length" ] ~docv:"N" ~doc:"Number of trace events to serve.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed for the trace and (under --chaos) the fault injector.")
  in
  let hotness_arg =
    Arg.(
      value & opt int 3
      & info [ "hotness" ] ~docv:"N"
          ~doc:"Interpreter invocations before JIT promotion.")
  in
  let kernels_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kernels" ] ~docv:"NAMES"
          ~doc:"Comma-separated suite kernels (default: the standard mix).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Session-pool shards; the report is identical for any N.")
  in
  let streams_arg =
    Arg.(
      value & opt int 4
      & info [ "streams" ] ~docv:"N"
          ~doc:"Concurrent ingress streams the trace is split across.")
  in
  let lanes_arg =
    Arg.(
      value & opt int 2
      & info [ "lanes" ] ~docv:"N"
          ~doc:"Concurrency lanes (virtual service slots).")
  in
  let budget_arg =
    Arg.(
      value & opt int 8
      & info [ "budget" ] ~docv:"N"
          ~doc:"Global in-flight admission budget.")
  in
  let backlog_arg =
    Arg.(
      value & opt int 0
      & info [ "backlog" ] ~docv:"N"
          ~doc:
            "Global queued-event watermark; above it the lowest-priority \
             shed-policy queues are trimmed (0 = never trim).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-cap" ] ~docv:"N" ~doc:"Per-stream ingress queue bound.")
  in
  let policy_arg =
    Arg.(
      value & opt string "block"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Backpressure policy when a queue fills: 'block' (producer \
             stalls) or 'shed' (drop and account).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"CYCLES"
          ~doc:
            "Per-event deadline: an event queued longer than $(docv) \
             virtual cycles times out with its buffers untouched.")
  in
  let stream_deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stream-deadline" ] ~docv:"CYCLES"
          ~doc:"Absolute virtual-cycle cutoff applied to every stream.")
  in
  let interval_arg =
    Arg.(
      value & opt int 0
      & info [ "interval" ] ~docv:"CYCLES"
          ~doc:
            "Virtual cycles between successive arrivals (0 floods \
             everything at t=0 — the overload setting).")
  in
  let priority_levels_arg =
    Arg.(
      value & opt int 1
      & info [ "priority-levels" ] ~docv:"N"
          ~doc:
            "Spread streams across $(docv) priority levels; sheds hit the \
             lowest priority first.")
  in
  let breaker_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive failures (mismatch, fault, or timeout) that open \
             a kernel's circuit breaker.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "breaker-cooldown" ] ~docv:"CYCLES"
          ~doc:"Virtual cycles an open breaker dwells before its probe.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 1
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Batch-formation cap: a per-kernel batch dispatches the moment \
             it holds $(docv) events.  1 (the default) is the exact \
             unbatched dispatch path.")
  in
  let batch_window_arg =
    Arg.(
      value & opt int 1024
      & info [ "batch-window" ] ~docv:"CYCLES"
          ~doc:
            "Batch-formation window: an open batch closes after $(docv) \
             virtual cycles, or earlier if a member deadline is at risk.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Inject the serving chaos mix (corrupt bodies, transient \
             compile faults, consumer stalls, disconnects, deadline \
             exhaustion) with the differential oracle on.")
  in
  let crash_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:
            "Per-dispatched-batch probability that the owning shard \
             crashes (drawn from a dedicated seeded stream).  Any \
             nonzero value turns the supervisor on; crashed shards are \
             restored from their last checkpoint and the journal suffix \
             replayed, so the drained report stays byte-identical to \
             the crash-free run.")
  in
  let wedge_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "wedge-rate" ] ~docv:"P"
          ~doc:
            "Per-dispatched-batch probability that the lane wedges \
             without executing; the watchdog closes its members as \
             typed timeouts after the lane-stall limit.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"CYCLES"
          ~doc:
            "Shard-checkpoint period in virtual cycles (0 = only the \
             initial checkpoint).  Any nonzero value turns the \
             supervisor on.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Mirror the write-ahead admission journal and checkpoint \
             artifacts to $(docv) (created if missing); verify offline \
             with 'vaporc journal verify'.")
  in
  let restart_limit_arg =
    Arg.(
      value & opt int 3
      & info [ "restart-limit" ] ~docv:"N"
          ~doc:
            "Restarts tolerated inside one backoff streak before a \
             crashing shard degrades to interp-only serving (a further \
             crash sheds it typed).")
  in
  let lane_stall_limit_arg =
    Arg.(
      value & opt int 8192
      & info [ "lane-stall-limit" ] ~docv:"CYCLES"
          ~doc:
            "Virtual cycles a wedged lane may hold its members before \
             the watchdog times them out.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Persistent code store (created if missing).")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry (including serve.* gauges) to \
             $(docv): Prometheus text format, or JSON when $(docv) ends \
             in .json.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured span trace of the serve run to $(docv) as \
             JSONL: one replay_event root span per answered event (plus a \
             batch_dispatch marker per dispatched batch), with runtime \
             child spans beneath.  The serve report is byte-identical \
             with and without tracing.")
  in
  let trace_det_arg =
    Arg.(
      value & flag
      & info [ "trace-deterministic" ]
          ~doc:
            "Omit wall-clock fields from the span trace, leaving only the \
             deterministic ordinal clock.")
  in
  let run target profile length seed hotness kernels domains streams lanes
      budget backlog queue_cap policy deadline stream_deadline interval
      priority_levels breaker_threshold breaker_cooldown max_batch
      batch_window chaos crash_rate wedge_rate checkpoint_every journal_dir
      restart_limit lane_stall_limit store_dir metrics_out trace_out
      trace_deterministic =
    let target = resolve_target target in
    let policy = resolve_policy policy in
    let max_batch = resolve_positive ~flag:"max-batch" max_batch in
    let batch_window = resolve_positive ~flag:"batch-window" batch_window in
    let store = Option.map (open_store_or_die ~create:true) store_dir in
    let kernels =
      Option.map (List.map (fun n -> (resolve_kernel n).Suite.name)) kernels
    in
    let trace = Trace.standard ~seed ?kernels ~length ~n_targets:1 () in
    let faults =
      if chaos then
        let sp = Vapor_runtime.Faults.serve_chaos_spec ~seed in
        Some
          (Vapor_runtime.Faults.make
             {
               sp with
               Vapor_runtime.Faults.f_shard_crash_rate = crash_rate;
               f_lane_wedge_rate = wedge_rate;
             })
      else if crash_rate > 0.0 || wedge_rate > 0.0 then
        (* Crash-only injector: every primary-stream rate stays zero, so
           the run draws nothing but the dedicated crash/wedge stream
           and its recovered report is byte-identical to an injector-
           free baseline. *)
        Some
          (Vapor_runtime.Faults.make
             {
               Vapor_runtime.Faults.default_spec with
               Vapor_runtime.Faults.f_seed = seed;
               f_shard_crash_rate = crash_rate;
               f_lane_wedge_rate = wedge_rate;
             })
      else None
    in
    let guard =
      match faults with
      | None -> Vapor_runtime.Tiered.no_guard
      | Some f when chaos ->
        {
          Vapor_runtime.Tiered.g_oracle = Some Vapor_runtime.Tiered.oracle_always;
          g_faults = Some f;
          g_retry_budget = 3;
        }
      | Some f ->
        (* no oracle: the crash-only guard must not change the report *)
        { Vapor_runtime.Tiered.no_guard with Vapor_runtime.Tiered.g_faults = Some f }
    in
    let cfg =
      {
        (Service.default_config ~targets:[ target ]) with
        Service.cfg_profile = profile;
        cfg_hotness = hotness;
        cfg_guard = guard;
        cfg_store = store;
      }
    in
    let serve_cfg =
      {
        Serve.sv_service = cfg;
        sv_domains = domains;
        sv_lanes = lanes;
        sv_budget = budget;
        sv_backlog = backlog_of backlog;
        sv_faults = faults;
        sv_breaker_threshold = breaker_threshold;
        sv_breaker_cooldown = breaker_cooldown;
        sv_max_batch = max_batch;
        sv_batch_window = batch_window;
        sv_checkpoint_every = checkpoint_every;
        sv_journal_dir = journal_dir;
        sv_restart_limit = restart_limit;
        sv_lane_stall_limit = lane_stall_limit;
        sv_crash_at = [];
        sv_wedge_at = [];
      }
    in
    let wl =
      Workload.of_trace ~streams ~policy ~queue_cap ?deadline
        ?stream_deadline ~interval ~priority_levels trace
    in
    let stats = Stats.create () in
    let tracer =
      match trace_out with
      | None -> Vapor_obs.Tracer.disabled
      | Some _ -> Vapor_obs.Tracer.create ~wall:(not trace_deterministic) ()
    in
    let rep = Serve.run ~stats ~tracer serve_cfg wl in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Vapor_obs.Tracer.to_jsonl tracer);
        close_out oc)
      trace_out;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (if Filename.check_suffix path ".json" then Stats.to_json stats
           else Stats.to_prometheus stats);
        close_out oc)
      metrics_out;
    Printf.printf "serve-bench on %s (%s profile, hotness %d, seed %d)\n"
      target.Vapor_targets.Target.name profile.Profile.name hotness seed;
    Serve.print_report rep;
    Printf.printf "runtime metrics:\n%s" (Stats.to_table stats);
    serve_verdict rep ~chaos
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Drive a deterministic multi-stream load through the serving \
          layer (bounded ingress queues, admission budget, deadlines, \
          per-kernel circuit breakers, graceful drain) entirely \
          in-process over virtual time — no sockets, byte-identical \
          output per seed and flags.")
    Term.(
      const run $ target_arg $ profile_arg $ length_arg $ seed_arg
      $ hotness_arg $ kernels_arg $ domains_arg $ streams_arg $ lanes_arg
      $ budget_arg $ backlog_arg $ queue_cap_arg $ policy_arg
      $ deadline_arg $ stream_deadline_arg $ interval_arg
      $ priority_levels_arg $ breaker_threshold_arg $ breaker_cooldown_arg
      $ max_batch_arg $ batch_window_arg $ chaos_arg $ crash_rate_arg
      $ wedge_rate_arg $ checkpoint_every_arg $ journal_arg
      $ restart_limit_arg $ lane_stall_limit_arg $ store_arg
      $ metrics_out_arg $ trace_out_arg $ trace_det_arg)

(* The serve script language, one directive per line ('#' comments):

     stream <id> [priority=N] [policy=block|shed] [cap=N]
                 [deadline=N] [stream-deadline=N]
     event <stream-id> <kernel> [at=CYCLES] [scale=N]
     drain

   Stream ids must be dense (0..n-1).  Events keep their input order as
   the global sequence; arrivals are sorted by (at, sequence).  'drain'
   (optional) ends the script; serving always finishes with the full
   graceful drain. *)

let parse_serve_script lines =
  let streams = Hashtbl.create 8 in
  let events = ref [] in
  let n_events = ref 0 in
  let fail lineno msg =
    Printf.eprintf "vaporc serve: line %d: %s\n" lineno msg;
    exit 2
  in
  let kv_int lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno (Printf.sprintf "expected an integer, got '%s'" s)
  in
  let split_kv lineno tok =
    match String.index_opt tok '=' with
    | None -> fail lineno (Printf.sprintf "expected key=value, got '%s'" tok)
    | Some i ->
      ( String.sub tok 0 i,
        String.sub tok (i + 1) (String.length tok - i - 1) )
  in
  let done_ = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let toks =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      in
      if (not !done_) && toks <> [] then
        match toks with
        | [ "drain" ] -> done_ := true
        | "stream" :: id :: opts ->
          let id = kv_int lineno id in
          let priority = ref 0 in
          let policy = ref Ingress.Block in
          let cap = ref 16 in
          let deadline = ref None in
          let stream_deadline = ref None in
          List.iter
            (fun tok ->
              let k, v = split_kv lineno tok in
              match k with
              | "priority" -> priority := kv_int lineno v
              | "policy" -> policy := resolve_policy v
              | "cap" -> cap := kv_int lineno v
              | "deadline" -> deadline := Some (kv_int lineno v)
              | "stream-deadline" ->
                stream_deadline := Some (kv_int lineno v)
              | _ -> fail lineno (Printf.sprintf "unknown stream option '%s'" k))
            opts;
          Hashtbl.replace streams id
            (Workload.stream ~id ~priority:!priority ~policy:!policy
               ~queue_cap:!cap ?deadline:!deadline
               ?stream_deadline:!stream_deadline ())
        | "event" :: sid :: kernel :: opts ->
          let sid = kv_int lineno sid in
          let at = ref 0 in
          let scale = ref 2 in
          List.iter
            (fun tok ->
              let k, v = split_kv lineno tok in
              match k with
              | "at" -> at := kv_int lineno v
              | "scale" -> scale := kv_int lineno v
              | _ -> fail lineno (Printf.sprintf "unknown event option '%s'" k))
            opts;
          let kernel = (resolve_kernel kernel).Suite.name in
          events := (!at, !n_events, sid, kernel, !scale) :: !events;
          incr n_events
        | cmd :: _ ->
          fail lineno (Printf.sprintf "unknown directive '%s'" cmd)
        | [] -> ())
    lines;
  let events = List.rev !events in
  (* Dense stream table: every referenced id must exist (or be declared);
     undeclared referenced ids get the defaults. *)
  List.iter
    (fun (_, _, sid, _, _) ->
      if not (Hashtbl.mem streams sid) then
        Hashtbl.replace streams sid (Workload.stream ~id:sid ()))
    events;
  let n_streams = Hashtbl.length streams in
  let wl_streams =
    Array.init n_streams (fun i ->
        match Hashtbl.find_opt streams i with
        | Some s -> s
        | None ->
          Printf.eprintf
            "vaporc serve: stream ids must be dense 0..%d (missing %d)\n"
            (n_streams - 1) i;
          exit 2)
  in
  let sorted =
    List.stable_sort
      (fun (at1, seq1, _, _, _) (at2, seq2, _, _, _) ->
        match compare at1 at2 with 0 -> compare seq1 seq2 | c -> c)
      events
  in
  let stream_seqs = Array.make (max 1 n_streams) 0 in
  let arrivals =
    List.map
      (fun (at, seq, sid, kernel, scale) ->
        let k = stream_seqs.(sid) in
        stream_seqs.(sid) <- k + 1;
        {
          Workload.ar_at = at;
          ar_seq = seq;
          ar_stream = sid;
          ar_stream_seq = k;
          ar_event =
            {
              Trace.ev_index = seq;
              ev_kernel = kernel;
              ev_target = 0;
              ev_scale = scale;
            };
        })
      sorted
  in
  let kernels =
    List.sort_uniq compare
      (List.map (fun (_, _, _, k, _) -> k) events)
  in
  {
    Workload.wl_desc =
      Printf.sprintf "serve-script(%d events, %d streams)" !n_events
        n_streams;
    wl_kernels = kernels;
    wl_streams;
    wl_arrivals = Array.of_list arrivals;
  }

(* --- heterogeneous fleet -------------------------------------------------
   A seeded mixed population of machine descriptors over the seven target
   archetypes; SVE machines draw a per-machine vector length from
   {128, 256, 512} bits and are pinned to it (late-bound VF resolved at
   the machine).  splitmix64, self-contained like {!Trace}'s. *)

let fleet_population ~seed ~machines : Vapor_targets.Target.t list =
  let module T = Vapor_targets.Target in
  let state = ref (Int64.of_int (0x5eed0000 + seed)) in
  let mix () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let rand n =
    Int64.to_int (Int64.rem (Int64.logand (mix ()) Int64.max_int) (Int64.of_int n))
  in
  List.init machines (fun _ ->
      match rand 7 with
      | 0 -> Targets.target (* scalar *)
      | 1 -> Vapor_targets.Sse.target
      | 2 -> Vapor_targets.Avx.target
      | 3 -> Vapor_targets.Neon.target
      | 4 -> Vapor_targets.Altivec.target
      | 5 -> T.resolve ~vl:(16 lsl rand 3) Vapor_targets.Sve.target
      | _ -> Vapor_targets.Avx512.target)

let fleet_describe (targets : Vapor_targets.Target.t list) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (t : Vapor_targets.Target.t) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts t.Vapor_targets.Target.name) in
      Hashtbl.replace counts t.Vapor_targets.Target.name (n + 1))
    targets;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
  |> List.sort compare
  |> List.map (fun (name, n) -> Printf.sprintf "%s:%d" name n)
  |> String.concat " "

(* The fleet's mid-trace capability changes: SSE machines upgrade to
   AVX-512 and NEON machines to SVE (the Revec rejuvenation scenario, in
   the upgrade direction), plus an optional AVX -> scalar drop. *)
let fleet_retargets ~upgrade_at ~drop_at =
  let module T = Vapor_targets.Target in
  let ups =
    match upgrade_at with
    | None -> []
    | Some at ->
      [
        at, Vapor_targets.Sse.target, Vapor_targets.Avx512.target;
        at, Vapor_targets.Neon.target, T.resolve Vapor_targets.Sve.target;
      ]
  in
  let drops =
    match drop_at with
    | None -> []
    | Some at -> [ at, Vapor_targets.Avx.target, Targets.target ]
  in
  ups @ drops

let print_target_counters (stats : Stats.t) =
  let rows =
    List.filter
      (fun name -> String.length name > 7 && String.sub name 0 7 = "target.")
      (Stats.counter_names stats)
  in
  if rows <> [] then begin
    Printf.printf "per-target runs:\n";
    List.iter
      (fun name -> Printf.printf "  %-36s %d\n" name (Stats.counter stats name))
      rows
  end

let fleet_replay_cmd =
  let machines_arg =
    Arg.(
      value & opt int 12
      & info [ "machines" ] ~docv:"N"
          ~doc:"Fleet population size (seeded mix of the 7 archetypes).")
  in
  let fleet_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "fleet-seed" ] ~docv:"N"
          ~doc:"Seed for the population draw (independent of --seed).")
  in
  let upgrade_at_arg =
    Arg.(
      value & opt (some int) None
      & info [ "upgrade-at" ] ~docv:"EVENT"
          ~doc:
            "Trace index at which SSE machines upgrade to AVX-512 and \
             NEON machines to SVE (default: a third of the trace; -1 \
             disables upgrades).")
  in
  let drop_at_arg =
    Arg.(
      value & opt (some int) None
      & info [ "drop-at" ] ~docv:"EVENT"
          ~doc:
            "Trace index at which AVX machines drop to scalar serving \
             (default: no drop).")
  in
  let length_arg =
    Arg.(
      value & opt int 400
      & info [ "length" ] ~docv:"N" ~doc:"Trace length in events.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Trace seed.")
  in
  let hotness_arg =
    Arg.(
      value & opt int 3
      & info [ "hotness" ] ~docv:"N"
          ~doc:"Interpreter invocations before JIT promotion.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Session-pool shards; the drain report is identical for any N.")
  in
  let streams_arg =
    Arg.(
      value & opt int 4
      & info [ "streams" ] ~docv:"N" ~doc:"Ingress streams.")
  in
  let kernels_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kernels" ] ~docv:"NAMES"
          ~doc:"Comma-separated kernel subset (default: the standard mix).")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry (including the per-target \
             counters) to $(docv): Prometheus text, or JSON for .json \
             paths.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the service report as JSON instead.")
  in
  let run profile machines fleet_seed upgrade_at drop_at length seed hotness
      domains streams kernels metrics_out json =
    let population = fleet_population ~seed:fleet_seed ~machines in
    let upgrade_at =
      match upgrade_at with
      | Some at when at < 0 -> None
      | Some at -> Some at
      | None -> Some (length / 3)
    in
    let kernels =
      Option.map (List.map (fun n -> (resolve_kernel n).Suite.name)) kernels
    in
    let trace =
      Trace.standard ~seed ?kernels ~length ~n_targets:machines ()
    in
    let cfg =
      {
        (Service.default_config ~targets:population) with
        Service.cfg_profile = profile;
        cfg_hotness = hotness;
        cfg_retargets = fleet_retargets ~upgrade_at ~drop_at;
        cfg_label_targets = true;
      }
    in
    let serve_cfg =
      {
        Serve.sv_service = cfg;
        sv_domains = domains;
        sv_lanes = 2;
        sv_budget = 8;
        sv_backlog = backlog_of 0;
        sv_faults = None;
        sv_breaker_threshold = 3;
        sv_breaker_cooldown = 1_000_000;
        sv_max_batch = 1;
        sv_batch_window = 1024;
        sv_checkpoint_every = 0;
        sv_journal_dir = None;
        sv_restart_limit = 3;
        sv_lane_stall_limit = 8192;
        sv_crash_at = [];
        sv_wedge_at = [];
      }
    in
    let wl = Workload.of_trace ~streams trace in
    let stats = Stats.create () in
    let rep = Serve.run ~stats serve_cfg wl in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (if Filename.check_suffix path ".json" then Stats.to_json stats
           else Stats.to_prometheus stats);
        close_out oc)
      metrics_out;
    if json then print_string (Service.report_to_json rep.Serve.sr_service)
    else begin
      Printf.printf
        "fleet-replay: %d machines [%s], %d events (seed %d, %s profile)\n"
        machines (fleet_describe population) length seed profile.Profile.name;
      (match upgrade_at with
      | Some at ->
        Printf.printf
          "  upgrades at event %d: sse -> avx512, neon -> sve\n" at
      | None -> ());
      (match drop_at with
      | Some at -> Printf.printf "  drop at event %d: avx -> scalar\n" at
      | None -> ());
      Serve.print_report rep;
      print_target_counters stats
    end;
    serve_verdict rep ~chaos:false
  in
  Cmd.v
    (Cmd.info "fleet-replay"
       ~doc:
         "Drive one vectorized bytecode stream through a seeded \
          heterogeneous fleet of scalar/SSE/AVX/NEON/AltiVec/SVE/AVX-512 \
          machines, with mid-trace capability upgrades (SSE to AVX-512, \
          NEON to SVE) rejuvenating cached code, per-target labeled \
          metrics, and the serving layer's conservation checks.")
    Term.(
      const run $ profile_arg $ machines_arg $ fleet_seed_arg
      $ upgrade_at_arg $ drop_at_arg $ length_arg $ seed_arg $ hotness_arg
      $ domains_arg $ streams_arg $ kernels_arg $ metrics_out_arg $ json_arg)

let serve_cmd =
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Serve script to execute (default: read from stdin).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Session-pool shards; the report is identical for any N.")
  in
  let lanes_arg =
    Arg.(
      value & opt int 2
      & info [ "lanes" ] ~docv:"N" ~doc:"Concurrency lanes.")
  in
  let budget_arg =
    Arg.(
      value & opt int 8
      & info [ "budget" ] ~docv:"N" ~doc:"Global in-flight admission budget.")
  in
  let backlog_arg =
    Arg.(
      value & opt int 0
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Global backlog watermark (0 = never trim).")
  in
  let hotness_arg =
    Arg.(
      value & opt int 3
      & info [ "hotness" ] ~docv:"N"
          ~doc:"Interpreter invocations before JIT promotion.")
  in
  let breaker_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:"Consecutive failures that open a kernel's breaker.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "breaker-cooldown" ] ~docv:"CYCLES"
          ~doc:"Virtual cycles an open breaker dwells before its probe.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 1
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Batch-formation cap (1, the default, is the exact unbatched \
             dispatch path).")
  in
  let batch_window_arg =
    Arg.(
      value & opt int 1024
      & info [ "batch-window" ] ~docv:"CYCLES"
          ~doc:"Batch-formation window in virtual cycles.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Persistent code store (created if missing).")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Export the metrics registry (including serve.* gauges) to \
             $(docv): Prometheus text, or JSON for .json paths.")
  in
  let crash_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:
            "Per-dispatched-batch shard-crash probability (seeded from \
             --crash-seed); recovery keeps the drain report \
             byte-identical to the crash-free run.")
  in
  let crash_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "crash-seed" ] ~docv:"N"
          ~doc:"Seed for the crash/wedge schedule.")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"CYCLES"
          ~doc:
            "Shard-checkpoint period in virtual cycles (0 = only the \
             initial checkpoint); any nonzero value turns the \
             supervisor on.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Mirror the write-ahead admission journal and checkpoint \
             artifacts to $(docv) (created if missing).")
  in
  let restart_limit_arg =
    Arg.(
      value & opt int 3
      & info [ "restart-limit" ] ~docv:"N"
          ~doc:
            "Restarts tolerated inside one backoff streak before a \
             crashing shard degrades to interp-only serving.")
  in
  let lane_stall_limit_arg =
    Arg.(
      value & opt int 8192
      & info [ "lane-stall-limit" ] ~docv:"CYCLES"
          ~doc:
            "Virtual cycles a wedged lane may hold its members before \
             the watchdog times them out.")
  in
  let fleet_arg =
    Arg.(
      value & opt int 0
      & info [ "fleet" ] ~docv:"N"
          ~doc:
            "Serve over a seeded heterogeneous fleet of $(docv) machines \
             instead of one --target: scripted events spread round-robin \
             across the population and runtime counters are labeled per \
             resolved target (0 = off).")
  in
  let fleet_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "fleet-seed" ] ~docv:"N"
          ~doc:"Seed for the --fleet population draw.")
  in
  let run target profile script domains lanes budget backlog hotness
      breaker_threshold breaker_cooldown max_batch batch_window store_dir
      metrics_out crash_rate crash_seed checkpoint_every journal_dir
      restart_limit lane_stall_limit fleet fleet_seed =
    let target = resolve_target target in
    let max_batch = resolve_positive ~flag:"max-batch" max_batch in
    let batch_window = resolve_positive ~flag:"batch-window" batch_window in
    let store = Option.map (open_store_or_die ~create:true) store_dir in
    let lines =
      match script with
      | Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        String.split_on_char '\n' src
      | None ->
        let rec read acc =
          match input_line stdin with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read []
    in
    let wl = parse_serve_script lines in
    if Array.length wl.Workload.wl_arrivals = 0 then begin
      Printf.eprintf "vaporc serve: the script contains no events\n";
      exit 2
    end;
    let faults =
      if crash_rate > 0.0 then
        (* Crash-only injector (no oracle, every primary rate zero): the
           report stays byte-identical to the crash-free run. *)
        Some
          (Vapor_runtime.Faults.make
             {
               Vapor_runtime.Faults.default_spec with
               Vapor_runtime.Faults.f_seed = crash_seed;
               f_shard_crash_rate = crash_rate;
             })
      else None
    in
    let guard =
      match faults with
      | None -> Vapor_runtime.Tiered.no_guard
      | Some f ->
        { Vapor_runtime.Tiered.no_guard with Vapor_runtime.Tiered.g_faults = Some f }
    in
    let population =
      if fleet > 0 then fleet_population ~seed:fleet_seed ~machines:fleet
      else [ target ]
    in
    let wl =
      (* Scripted events all carry ev_target = 0; a fleet spreads them
         round-robin (by global arrival sequence) over the population so
         every machine archetype serves traffic. *)
      if fleet <= 0 then wl
      else
        {
          wl with
          Workload.wl_arrivals =
            Array.map
              (fun a ->
                {
                  a with
                  Workload.ar_event =
                    {
                      a.Workload.ar_event with
                      Trace.ev_target = a.Workload.ar_seq mod fleet;
                    };
                })
              wl.Workload.wl_arrivals;
        }
    in
    let cfg =
      {
        (Service.default_config ~targets:population) with
        Service.cfg_profile = profile;
        cfg_hotness = hotness;
        cfg_guard = guard;
        cfg_store = store;
        cfg_label_targets = fleet > 0;
      }
    in
    let serve_cfg =
      {
        Serve.sv_service = cfg;
        sv_domains = domains;
        sv_lanes = lanes;
        sv_budget = budget;
        sv_backlog = backlog_of backlog;
        sv_faults = faults;
        sv_breaker_threshold = breaker_threshold;
        sv_breaker_cooldown = breaker_cooldown;
        sv_max_batch = max_batch;
        sv_batch_window = batch_window;
        sv_checkpoint_every = checkpoint_every;
        sv_journal_dir = journal_dir;
        sv_restart_limit = restart_limit;
        sv_lane_stall_limit = lane_stall_limit;
        sv_crash_at = [];
        sv_wedge_at = [];
      }
    in
    if fleet > 0 then
      Printf.printf "fleet    : %d machines (%s), seed %d\n" fleet
        (fleet_describe population) fleet_seed;
    let stats = Stats.create () in
    let rep = Serve.run ~stats serve_cfg wl in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (if Filename.check_suffix path ".json" then Stats.to_json stats
           else Stats.to_prometheus stats);
        close_out oc)
      metrics_out;
    Serve.print_report rep;
    if fleet > 0 then print_target_counters stats;
    serve_verdict rep ~chaos:false
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a scripted stream workload ('stream'/'event'/'drain' \
          lines from stdin or --script) through the resilient serving \
          layer and print the drain report.  The same virtual-time \
          engine as serve-bench: deterministic, no sockets.")
    Term.(
      const run $ target_arg $ profile_arg $ script_arg $ domains_arg
      $ lanes_arg $ budget_arg $ backlog_arg $ hotness_arg
      $ breaker_threshold_arg $ breaker_cooldown_arg $ max_batch_arg
      $ batch_window_arg $ store_arg $ metrics_out_arg $ crash_rate_arg
      $ crash_seed_arg $ checkpoint_every_arg $ journal_arg
      $ restart_limit_arg $ lane_stall_limit_arg $ fleet_arg
      $ fleet_seed_arg)

(* --- vaporc cache: persistent-store maintenance -------------------------
   None of these create a store: pointing them at a missing or unusable
   directory is a user error (exit 2), per the unknown-name convention —
   `cache verify` silently conjuring an empty store would report a
   corrupted one as clean. *)

let cache_cmd =
  let store_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "The persistent code store to operate on.  Never created: a \
             missing or unusable $(docv) exits 2.")
  in
  let hex_short k =
    let h = String.concat ""
        (List.map (Printf.sprintf "%02x")
           (List.init (String.length k.Store.sk_digest) (fun i ->
                Char.code k.Store.sk_digest.[i])))
    in
    String.sub h 0 (min 10 (String.length h))
  in
  let summary s =
    Printf.printf "%d valid entries (%d bytes), %d quarantined\n"
      (Store.entry_count s) (Store.byte_count s) (Store.quarantined_count s)
  in
  let ls_cmd =
    let run path =
      let s = open_store_or_die ~create:false path in
      let rows = Store.rows s in
      if rows <> [] then begin
        Printf.printf "%-12s %-8s %-9s %-18s %8s %6s  %s\n" "digest" "target"
          "profile" "kernel" "bytes" "tick" "status";
        List.iter
          (fun (r : Store.index_row) ->
            Printf.printf "%-12s %-8s %-9s %-18s %8d %6d  %s\n"
              (hex_short r.Store.ix_key)
              r.Store.ix_key.Store.sk_target r.Store.ix_key.Store.sk_profile
              (Option.value ~default:"-" (Store.row_kernel_name s r))
              r.Store.ix_bytes r.Store.ix_tick
              (match r.Store.ix_status with
              | Store.Valid -> "valid"
              | Store.Quarantined -> "QUARANTINED"))
          rows
      end;
      summary s
    in
    Cmd.v
      (Cmd.info "ls" ~doc:"List every store entry (valid and quarantined).")
      Term.(const run $ store_arg)
  in
  let verify_cmd =
    let run path =
      let s = open_store_or_die ~create:false path in
      let failures = Store.verify s in
      List.iter
        (fun (k, reason) ->
          Printf.printf "FAIL %s: %s\n" (Store.key_to_string k) reason)
        failures;
      summary s;
      if failures = [] then print_endline "verify: OK"
      else begin
        Printf.printf "verify: %d corrupt entr%s quarantined\n"
          (List.length failures)
          (if List.length failures = 1 then "y" else "ies");
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-check every valid entry against its checksum and key; \
            quarantine failures and exit 1 if any were found.")
      Term.(const run $ store_arg)
  in
  let gc_cmd =
    let max_entries_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-entries" ] ~docv:"N"
            ~doc:"Entry budget to enforce (default: the store's own).")
    in
    let max_bytes_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"BYTES"
            ~doc:"Payload-byte budget to enforce (default: the store's own).")
    in
    let run path max_entries max_bytes =
      let s = open_store_or_die ~create:false path in
      let evicted = Store.gc ?max_entries ?max_bytes s in
      Printf.printf "gc: evicted %d entr%s\n" evicted
        (if evicted = 1 then "y" else "ies");
      summary s
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Evict least-recently-used entries beyond the budgets and sweep \
            leftover staging directories.")
      Term.(const run $ store_arg $ max_entries_arg $ max_bytes_arg)
  in
  let clear_cmd =
    let run path =
      let s = open_store_or_die ~create:false path in
      Store.clear s;
      print_endline "cleared";
      summary s
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Delete every entry (and quarantined file) in the store.")
      Term.(const run $ store_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain a persistent code store (see serve-replay \
          --store).")
    [ ls_cmd; verify_cmd; gc_cmd; clear_cmd ]

(* --- vaporc journal: admission-journal maintenance ----------------------
   Operates on a --journal directory written by serve/serve-bench:
   VAPORJNL segments and VAPORCKP checkpoint artifacts.  Never creates
   one — verifying a conjured empty directory would call corruption
   clean. *)

let journal_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "The journal directory (see serve-bench --journal).  Never \
             created: a missing $(docv) exits 2.")
  in
  let verify_cmd =
    let run dir =
      match Vapor_serve.Journal.verify_dir dir with
      | Error msg ->
        Printf.printf "journal verify: FAIL — %s\n" msg;
        exit 1
      | Ok s ->
        Printf.printf
          "journal verify: OK — %d segment(s), %d frame(s) (%d admits / \
           %d completes), %d checkpoint artifact(s)\n"
          s.Vapor_serve.Journal.ds_segments s.Vapor_serve.Journal.ds_frames
          s.Vapor_serve.Journal.ds_admits s.Vapor_serve.Journal.ds_completes
          s.Vapor_serve.Journal.ds_checkpoints
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Decode every journal segment and checkpoint artifact under \
            DIR, checking framing and checksums; exit 1 on the first \
            corruption.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "journal"
       ~doc:
         "Inspect a serving-layer admission journal (see serve-bench \
          --journal).")
    [ verify_cmd ]

let jit_report_cmd =
  let targets_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "t"; "targets" ] ~docv:"NAMES"
          ~doc:"Comma-separated targets to profile (default: all).")
  in
  let kernels_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "k"; "kernels" ] ~docv:"NAMES"
          ~doc:"Comma-separated suite kernels (default: the whole suite).")
  in
  let invocations_arg =
    Arg.(
      value & opt int 1000
      & info [ "invocations" ] ~docv:"N"
          ~doc:
            "Invocation count for the amortized compile-share column \
             (modeled compile time vs N modeled executions).")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Wall-clock timing repeats per kernel; the best is reported.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the rows as JSON instead of a table.")
  in
  let run targets profile kernels invocations repeats scale json =
    let targets =
      match targets with
      | Some names -> List.map resolve_target names
      | None -> Targets.all
    in
    let kernels =
      Option.map (List.map (fun n -> (resolve_kernel n).Suite.name)) kernels
    in
    let rows =
      Vapor_harness.Jit_report.run ~repeats ~invocations ~scale ?kernels
        ~targets ~profile ()
    in
    if json then print_string (Vapor_harness.Jit_report.to_json rows)
    else begin
      Printf.printf
        "jit-report (%s profile, compile share at %d invocations)\n"
        profile.Profile.name invocations;
      print_string
        (Vapor_harness.Jit_report.table_to_string ~invocations rows)
    end
  in
  Cmd.v
    (Cmd.info "jit-report"
       ~doc:
         "Profile the online compiler: per (kernel, target), the chosen \
          vectorization factor, alignment strategy, guard resolution, \
          per-stage compile times (lower/emit/regalloc/prepare), code \
          footprint, and the amortized compile share after N invocations.")
    Term.(
      const run $ targets_arg $ profile_arg $ kernels_arg $ invocations_arg
      $ repeats_arg $ scale_arg $ json_arg)

let experiments_cmd =
  let run scale =
    let rows, mean = E.fig5 ~target:Vapor_targets.Sse.target ~scale in
    R.print_rows
      ~title:"Figure 5a: Mono normalized vectorization impact, SSE (128-bit)"
      ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;
    let rows, mean = E.fig5 ~target:Vapor_targets.Altivec.target ~scale in
    R.print_rows
      ~title:
        "Figure 5b: Mono normalized vectorization impact, AltiVec (128-bit)"
      ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;
    List.iter
      (fun (tag, target) ->
        let rows, mean = E.fig6 ~target ~scale in
        R.print_rows
          ~title:
            (Printf.sprintf "Figure 6%s: gcc4cli normalized execution time, %s"
               tag target.Vapor_targets.Target.name)
          ~value_label:"lower is better" ~mean_label:"Har. Mean" ~mean rows)
      [
        "a", Vapor_targets.Sse.target;
        "b", Vapor_targets.Altivec.target;
        "c", Vapor_targets.Neon.target;
      ];
    R.print_table3 (E.table3 ());
    List.iter
      (fun target ->
        let rows, mean = E.ablation ~target ~scale in
        R.print_rows
          ~title:
            (Printf.sprintf
               "Ablation V-A.b: alignment optimizations disabled, %s"
               target.Vapor_targets.Target.name)
          ~value_label:"degradation factor" ~mean_label:"Average" ~mean rows)
      [ Vapor_targets.Sse.target; Vapor_targets.Altivec.target ];
    R.print_compile_stats (E.compile_stats ())
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate every figure and table of the paper's evaluation.")
    Term.(const run $ scale_arg)

let () =
  let info =
    Cmd.info "vaporc" ~version:"1.0.0"
      ~doc:"Vapor SIMD: auto-vectorize once, run everywhere."
  in
  let group =
    Cmd.group info
      [
        list_cmd; dump_ir_cmd; vectorize_cmd; lower_cmd; run_cmd; conform_cmd;
        stat_cmd; encode_cmd; disasm_cmd; serve_replay_cmd; chaos_replay_cmd;
        serve_bench_cmd; serve_cmd; fleet_replay_cmd; cache_cmd; journal_cmd;
        jit_report_cmd; experiments_cmd;
      ]
  in
  let die msg =
    prerr_endline ("vaporc: " ^ msg);
    exit 1
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Vapor_frontend.Lexer.Lex_error msg -> die msg
  | exception Vapor_frontend.Parser.Parse_error msg -> die msg
  | exception Vapor_frontend.Typecheck.Error msg -> die ("type error: " ^ msg)
  | exception Failure msg -> die msg
  | exception Invalid_argument msg -> die msg
  | exception Sys_error msg -> die msg
  | exception Vapor_vecir.Encode.Decode_error msg ->
    die ("bytecode decode error: " ^ msg)
