(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V), then times the toolchain's own stages with
   Bechamel — one benchmark per reproduced table/figure.

     dune exec bench/main.exe                  full experiments + microbenchmarks
     dune exec bench/main.exe -- quick         experiments only
     dune exec bench/main.exe -- bench-replay  wall-clock fast-path bench only
     add --json to also write BENCH.json *)

module E = Vapor_harness.Experiments
module R = Vapor_harness.Report
module Suite = Vapor_kernels.Suite
module Flows = Vapor_harness.Flows
module Driver = Vapor_vectorizer.Driver
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Iaca = Vapor_machine.Iaca

let scale = 2

(* ---------------------------------------------------------------------- *)
(* Part 1: the paper's tables and figures.                                 *)

let run_experiments () =
  Printf.printf
    "Vapor SIMD reproduction: auto-vectorize once, run everywhere\n";
  Printf.printf
    "=============================================================\n";
  Printf.printf "(workload scale %d; see EXPERIMENTS.md for the\n" scale;
  Printf.printf " paper-vs-measured comparison of every row)\n";

  let rows, mean = E.fig5 ~target:Vapor_targets.Sse.target ~scale in
  R.print_rows
    ~title:"Figure 5a: Mono normalized vectorization impact, SSE (128-bit)"
    ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;

  let rows, mean = E.fig5 ~target:Vapor_targets.Altivec.target ~scale in
  R.print_rows
    ~title:
      "Figure 5b: Mono normalized vectorization impact, AltiVec (128-bit)"
    ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;

  List.iter
    (fun (tag, target) ->
      let rows, mean = E.fig6 ~target ~scale in
      R.print_rows
        ~title:
          (Printf.sprintf
             "Figure 6%s: gcc4cli normalized execution time, %s" tag
             target.Vapor_targets.Target.name)
        ~value_label:"lower is better" ~mean_label:"Har. Mean" ~mean rows)
    [
      "a (128-bit)", Vapor_targets.Sse.target;
      "b (128-bit)", Vapor_targets.Altivec.target;
      "c (64-bit)", Vapor_targets.Neon.target;
    ];

  R.print_table3 (E.table3 ());

  List.iter
    (fun target ->
      let rows, mean = E.ablation ~target ~scale in
      R.print_rows
        ~title:
          (Printf.sprintf
             "Section V-A.b ablation: alignment optimizations disabled, %s"
             target.Vapor_targets.Target.name)
        ~value_label:"degradation factor" ~mean_label:"Average" ~mean rows)
    [ Vapor_targets.Sse.target; Vapor_targets.Altivec.target ];

  R.print_design_ablations
    (E.design_ablations ~target:Vapor_targets.Altivec.target ~scale);

  R.print_compile_stats (E.compile_stats ())

(* ---------------------------------------------------------------------- *)
(* Part 2: the runtime subsystem — replay a standard seeded trace through
   the tiered (interpreter -> JIT) runtime with the content-addressed code
   cache, once per SIMD target, and report what a managed runtime
   amortizes: JIT compile cost per invocation and cache hit rate.          *)

module Service = Vapor_runtime.Service
module Trace = Vapor_runtime.Trace

let replay_trace_length = 400
let replay_hotness = 3

let run_replay () =
  Printf.printf "\nTiered runtime replay (standard trace, %d events)\n"
    replay_trace_length;
  Printf.printf "=================================================\n";
  Printf.printf
    "(hotness threshold %d; cache 64 entries / 256 KiB; mono profile)\n\n"
    replay_hotness;
  let trace =
    Trace.standard ~length:replay_trace_length ~n_targets:1 ()
  in
  let reports =
    List.map
      (fun target ->
        let cfg =
          {
            (Service.default_config ~targets:[ target ]) with
            Service.cfg_hotness = replay_hotness;
          }
        in
        target, Service.replay cfg trace)
      Vapor_targets.Scalar_target.all_simd
  in
  Printf.printf "  %-8s %6s %9s %9s %11s %11s %10s %9s\n" "target" "inv"
    "hit rate" "evict" "cold us" "amort us" "amortized" "promoted";
  List.iter
    (fun ((target : Vapor_targets.Target.t), rp) ->
      let promoted =
        List.length
          (List.filter
             (fun (r : Service.kernel_row) -> r.Service.kr_promoted_at <> None)
             rp.Service.rp_rows)
      in
      Printf.printf "  %-8s %6d %8.1f%% %9d %11.2f %11.3f %9.0fx %5d/%-3d\n"
        target.Vapor_targets.Target.name rp.Service.rp_invocations
        (100.0 *. rp.Service.rp_hit_rate)
        rp.Service.rp_evictions rp.Service.rp_cold_compile_us
        rp.Service.rp_amortized_us
        (Service.amortization_factor rp)
        promoted
        (List.length rp.Service.rp_rows))
    reports;
  match reports with
  | (target, rp) :: _ ->
    Printf.printf "\ntier breakdown, %s (interpreter -> JIT promotion):\n"
      target.Vapor_targets.Target.name;
    Service.print_tier_table rp
  | [] -> ()

(* Part 2b: guarded execution under injected faults — the same trace with
   the differential oracle checking every JIT run while bodies are
   corrupted and compiles transiently fail.  The figure of merit is the
   throughput cost of surviving every fault with zero wrong outputs.      *)

module Tiered = Vapor_runtime.Tiered
module Faults = Vapor_runtime.Faults

let run_chaos_replay () =
  Printf.printf "\nGuarded replay under injected faults (seeded chaos)\n";
  Printf.printf "===================================================\n";
  Printf.printf
    "(oracle on every JIT run; 5%% body corruption, 25%% transient \
     compile faults)\n\n";
  let trace =
    Trace.standard ~length:replay_trace_length ~n_targets:1 ()
  in
  Printf.printf "  %-8s %6s %8s %11s %11s %8s %8s %10s\n" "target" "inv"
    "checks" "mismatches" "quarantines" "retries" "demoted" "thru cost";
  List.iter
    (fun (target : Vapor_targets.Target.t) ->
      let healthy_cfg =
        {
          (Service.default_config ~targets:[ target ]) with
          Service.cfg_hotness = replay_hotness;
        }
      in
      let healthy = Service.replay healthy_cfg trace in
      let faults = Faults.make (Faults.chaos_spec ~seed:1) in
      let cfg =
        {
          healthy_cfg with
          Service.cfg_guard =
            {
              Tiered.g_oracle = Some Tiered.oracle_always;
              g_faults = Some faults;
              g_retry_budget = 3;
            };
        }
      in
      let rp = Service.replay cfg trace in
      let cost =
        if Service.throughput rp <= 0.0 then Float.infinity
        else Service.throughput healthy /. Service.throughput rp
      in
      Printf.printf "  %-8s %6d %8d %11d %11d %8d %8d %9.2fx\n"
        target.Vapor_targets.Target.name rp.Service.rp_invocations
        rp.Service.rp_oracle_checks rp.Service.rp_oracle_mismatches
        rp.Service.rp_quarantines rp.Service.rp_retries
        rp.Service.rp_demotions cost)
    Vapor_targets.Scalar_target.all_simd

(* ---------------------------------------------------------------------- *)
(* Part 3: Bechamel microbenchmarks of the pipeline stages that produce
   each table — offline vectorization, JIT compilation, simulation.        *)

open Bechamel
open Toolkit

let kernel_of name = Suite.kernel (Suite.find name)

let bench_fig5_flow () =
  (* One full Figure-5 data point: the four flows for one kernel. *)
  let entry = Suite.find "saxpy_fp" in
  ignore (E.fig5_impact ~target:Vapor_targets.Sse.target ~scale:1 entry)

let bench_fig6_flow () =
  let entry = Suite.find "jacobi_fp" in
  ignore (E.fig6_ratio ~target:Vapor_targets.Altivec.target ~scale:1 entry)

let bench_offline_vectorizer () =
  (* The offline stage (uncached) on a representative kernel. *)
  ignore (Driver.vectorize (kernel_of "interp_s16"))

let bench_jit_compile () =
  (* Table 3's producer: online compilation of one kernel for AVX. *)
  let bytecode =
    (Flows.vectorized_bytecode (Suite.find "sfir_fp")).Driver.vkernel
  in
  let c =
    Compile.compile ~target:Vapor_targets.Avx.target ~profile:Profile.avx_split
      bytecode
  in
  ignore (Iaca.vector_loop_cycles Vapor_targets.Avx.target c.Compile.mfun)

let bench_codec () =
  (* The bytecode-size table's producer: encode + decode round trip. *)
  let bytecode =
    (Flows.vectorized_bytecode (Suite.find "mmm_fp")).Driver.vkernel
  in
  ignore (Vapor_vecir.Encode.decode (Vapor_vecir.Encode.encode bytecode))

let benchmarks =
  Test.make_grouped ~name:"vapor"
    [
      Test.make ~name:"fig5-datapoint" (Staged.stage bench_fig5_flow);
      Test.make ~name:"fig6-datapoint" (Staged.stage bench_fig6_flow);
      Test.make ~name:"offline-vectorize"
        (Staged.stage bench_offline_vectorizer);
      Test.make ~name:"table3-jit+iaca" (Staged.stage bench_jit_compile);
      Test.make ~name:"sizes-codec" (Staged.stage bench_codec);
    ]

let run_benchmarks () =
  Printf.printf "\nBechamel microbenchmarks (toolchain stages)\n";
  Printf.printf "===========================================\n%!";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        tbl)
    instances


(* ---------------------------------------------------------------------- *)
(* Part 4: wall-clock throughput of the fast execution engine — the
   slot-compiled interpreter bodies and pre-resolved simulator plans —
   against the reference engine, plus the domain-sharded replay driver.
   Everything else in this harness measures *modeled* cycles; this part
   measures real elapsed time, which is what the fast path buys.          *)

module Veval = Vapor_vecir.Veval
module Vfast = Vapor_vecir.Vfast
module Simulator = Vapor_machine.Simulator
module Layout = Vapor_machine.Layout
module Exec = Vapor_harness.Exec

let now () = Unix.gettimeofday ()

let time_s f =
  let t0 = now () in
  f ();
  now () -. t0

(* Best of three: wall-clock on a shared machine is noisy downward only. *)
(* Settle the GC before each sample so a major collection inherited from
   the previous measurement does not land in this one; best-of-N then
   absorbs any collection the sample itself triggers. *)
let best_of n f =
  let sample () =
    Gc.full_major ();
    time_s f
  in
  let best = ref (sample ()) in
  for _ = 2 to n do
    let s = sample () in
    if s < !best then best := s
  done;
  !best

let best_of_3 f = best_of 3 f

let micro_iters = 2_000

(* Per-run ns of the bytecode interpreter: reference Veval vs the
   slot-compiled Vfast body, same kernel, same mode, same argument
   buffers (reused across runs for both, so setup cost cancels). *)
let micro_interp () =
  let entry = Suite.find "sfir_fp" in
  let vk = (Flows.vectorized_bytecode entry).Driver.vkernel in
  let mode = Veval.Vector 16 in
  let args = entry.Suite.args ~scale:1 in
  let compiled = Vfast.compile vk ~mode in
  ignore (Veval.run vk ~mode ~args);
  ignore (Vfast.run compiled ~args);
  let ref_s =
    best_of_3 (fun () ->
        for _ = 1 to micro_iters do
          ignore (Veval.run vk ~mode ~args)
        done)
  in
  let fast_s =
    best_of_3 (fun () ->
        for _ = 1 to micro_iters do
          ignore (Vfast.run compiled ~args)
        done)
  in
  let per x = x *. 1e9 /. float_of_int micro_iters in
  per ref_s, per fast_s

(* Per-run ns of the machine simulator: Simulator.run (per-run label
   resolution and assoc-list binding) vs the pre-resolved plan. *)
let micro_simulator () =
  let entry = Suite.find "sfir_fp" in
  let vk = (Flows.vectorized_bytecode entry).Driver.vkernel in
  let target = Vapor_targets.Sse.target in
  let compiled = Compile.compile ~target ~profile:Profile.gcc4cli vk in
  let args = entry.Suite.args ~scale:1 in
  let arrays, scalars = Exec.split_args args in
  let stack_bytes =
    max Layout.default_stack_bytes
      (compiled.Compile.mfun.Vapor_machine.Mfun.stack_bytes + 256)
  in
  let layout =
    Layout.plan ~stack_bytes ~policy:Layout.aligned_policy arrays
  in
  let mem = Layout.materialize layout arrays in
  let plan = compiled.Compile.plan in
  ignore (Simulator.run target layout mem compiled.Compile.mfun
            ~scalar_args:scalars);
  ignore (Simulator.run_plan plan layout mem ~scalar_args:scalars);
  let ref_s =
    best_of_3 (fun () ->
        for _ = 1 to micro_iters do
          ignore
            (Simulator.run target layout mem compiled.Compile.mfun
               ~scalar_args:scalars)
        done)
  in
  let fast_s =
    best_of_3 (fun () ->
        for _ = 1 to micro_iters do
          ignore (Simulator.run_plan plan layout mem ~scalar_args:scalars)
        done)
  in
  let per x = x *. 1e9 /. float_of_int micro_iters in
  per ref_s, per fast_s

let bench_replay_length = 2_000

let replay_cfg ~engine ~guard target =
  {
    (Service.default_config ~targets:[ target ]) with
    Service.cfg_hotness = replay_hotness;
    cfg_engine = engine;
    cfg_guard = guard;
  }

(* Wall-clock replay throughput per engine; the replay itself is the
   serving loop a managed runtime would run, so events/second is the
   headline figure. *)
let bench_replay_target target =
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let run engine () =
    ignore
      (Service.replay (replay_cfg ~engine ~guard:Tiered.no_guard target) trace)
  in
  let ref_s = best_of 5 (run Tiered.Reference) in
  let fast_s = best_of 5 (run Tiered.Fast) in
  let per_s x = float_of_int bench_replay_length /. x in
  target, per_s ref_s, per_s fast_s, ref_s /. fast_s

(* The domains curve is cores-aware: the replay spawns at most
   [recommended_domain_count] OS domains, so the measured scaling (and
   the CI gate on it) is only meaningful relative to the cores the run
   actually had.  The core count is recorded alongside the curve. *)
let bench_domains () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let cfg = replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target in
  let baseline =
    Service.report_to_string (Service.replay_sharded ~domains:1 cfg trace)
  in
  let rows =
    List.map
      (fun domains ->
        let report = ref baseline in
        let s =
          best_of_3 (fun () ->
              report :=
                Service.report_to_string
                  (Service.replay_sharded ~domains cfg trace))
        in
        ( domains,
          float_of_int bench_replay_length /. s,
          String.equal baseline !report ))
      [ 1; 2; 4 ]
  in
  let base_ps =
    match rows with (_, ps, _) :: _ -> ps | [] -> 1.0
  in
  ( Domain.recommended_domain_count (),
    List.map (fun (d, ps, same) -> d, ps, ps /. base_ps, same) rows )

let bench_oracle () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let guard =
    {
      Tiered.g_oracle = Some Tiered.oracle_always;
      g_faults = None;
      g_retry_budget = 3;
    }
  in
  let unguarded =
    best_of_3 (fun () ->
        ignore
          (Service.replay
             (replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target)
             trace))
  in
  let guarded =
    best_of_3 (fun () ->
        ignore
          (Service.replay (replay_cfg ~engine:Tiered.Fast ~guard target) trace))
  in
  unguarded, guarded, guarded /. unguarded

(* Part 4b: the persistent code store — cold (empty store, every body
   JIT-compiled and published) vs warm (every body loaded from disk, zero
   real compiles).  Hotness 0 and a short trace keep compilation a large
   share of the cold run, so the warm win is the store's, not noise.      *)

module Store = Vapor_store.Store
module Stats = Vapor_runtime.Stats

let store_bench_length = 120

type store_bench = {
  sb_events : int;
  sb_cold_s : float;
  sb_warm_s : float;
  sb_warm_real_compiles : int;
  sb_warm_hit_rate : float;
  sb_identical : bool;
}

let bench_store () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:store_bench_length ~n_targets:1 () in
  let cfg store =
    {
      (replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target) with
      Service.cfg_hotness = 0;
      cfg_store = Some store;
    }
  in
  let open_store dir =
    match Store.open_store ~create:true dir with
    | Ok s -> s
    | Error m -> failwith ("bench store: " ^ m)
  in
  (* Cold: each sample gets a virgin store directory. *)
  let cold_report = ref "" in
  let cold_s =
    best_of_3 (fun () ->
        let s = open_store (Filename.temp_dir "vapor_bench_store" ".cold") in
        cold_report := Service.report_to_string (Service.replay (cfg s) trace))
  in
  (* Warm: populate one store, then replay against reopened handles so
     every sample pays the real disk reads a fresh process would. *)
  let dir = Filename.temp_dir "vapor_bench_store" ".warm" in
  ignore (Service.replay (cfg (open_store dir)) trace);
  let warm_report = ref "" and warm_stats = ref (Stats.create ()) in
  let warm_s =
    best_of_3 (fun () ->
        let st = Stats.create () in
        warm_report :=
          Service.report_to_string
            (Service.replay ~stats:st (cfg (open_store dir)) trace);
        warm_stats := st)
  in
  let gauge name = Option.value ~default:0.0 (Stats.gauge !warm_stats name) in
  {
    sb_events = store_bench_length;
    sb_cold_s = cold_s;
    sb_warm_s = warm_s;
    sb_warm_real_compiles = int_of_float (gauge "jit.real_compiles");
    sb_warm_hit_rate = gauge "store.hit_rate";
    sb_identical = String.equal !cold_report !warm_report;
  }

(* Part 4c: the serving layer — the same trace fanned across concurrent
   streams through the discrete-event serve engine (admission control,
   backpressure, deadlines, breaker).  The figures of merit are serving
   throughput, zero lost events, byte-identity of the drained report with
   a plain replay, and conservation under serving-shaped chaos.           *)

module Serve = Vapor_serve.Serve
module Workload = Vapor_serve.Workload

type serve_bench = {
  vb_events : int;
  vb_streams : int;
  vb_s : float;
  vb_answered : int;
  vb_lost : int;
  vb_identical : bool;
  vb_chaos_conserved : bool;
}

let bench_serve () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let cfg = replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target in
  let wl = Workload.of_trace ~streams:4 trace in
  let scfg = Serve.default_cfg cfg in
  let rep = ref (Serve.run scfg wl) in
  let s = best_of_3 (fun () -> rep := Serve.run scfg wl) in
  let embedded = Service.report_to_string !rep.Serve.sr_service in
  let replayed = Service.report_to_string (Service.replay cfg trace) in
  let chaos_ok =
    let faults = Faults.make (Faults.serve_chaos_spec ~seed:42) in
    let ccfg =
      {
        cfg with
        Service.cfg_guard =
          {
            Tiered.g_oracle = Some Tiered.oracle_always;
            g_faults = Some faults;
            g_retry_budget = 3;
          };
      }
    in
    let crep =
      Serve.run
        { (Serve.default_cfg ccfg) with Serve.sv_faults = Some faults }
        (Workload.of_trace ~streams:4 trace)
    in
    crep.Serve.sr_lost = 0
    && crep.Serve.sr_service.Service.rp_oracle_mismatches
       <= crep.Serve.sr_service.Service.rp_quarantines
  in
  {
    vb_events = Workload.total wl;
    vb_streams = Workload.streams wl;
    vb_s = s;
    vb_answered = !rep.Serve.sr_answered;
    vb_lost = !rep.Serve.sr_lost;
    vb_identical = String.equal embedded replayed;
    vb_chaos_conserved = chaos_ok;
  }

(* Part 4d: batched dispatch — the same 8-stream flood served with batch
   formation off (--max-batch 1, the exact unbatched path) and on.  The
   figures of merit are the wall-clock speedup from duplicate-operand
   elision and byte-identity of the two embedded replay reports (batching
   must be semantics-free).                                               *)

type batch_bench = {
  tb_events : int;
  tb_streams : int;
  tb_off_s : float;
  tb_on_s : float;
  tb_mean_batch : float;
  tb_identical : bool;
}

let bench_batch () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let cfg = replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target in
  let mk max_batch =
    {
      (Serve.default_cfg cfg) with
      Serve.sv_budget = 64;
      sv_max_batch = max_batch;
      sv_batch_window = 32_768;
    }
  in
  let wl = Workload.of_trace ~streams:8 trace in
  let off_rep = ref (Serve.run (mk 1) wl) in
  let off_s = best_of_3 (fun () -> off_rep := Serve.run (mk 1) wl) in
  let on_rep = ref (Serve.run (mk 32) wl) in
  let on_s = best_of_3 (fun () -> on_rep := Serve.run (mk 32) wl) in
  let embedded r = Service.report_to_string r.Serve.sr_service in
  {
    tb_events = Workload.total wl;
    tb_streams = Workload.streams wl;
    tb_off_s = off_s;
    tb_on_s = on_s;
    tb_mean_batch =
      (if !on_rep.Serve.sr_batches = 0 then 0.0
       else
         float_of_int !on_rep.Serve.sr_batched_events
         /. float_of_int !on_rep.Serve.sr_batches);
    tb_identical = String.equal (embedded !off_rep) (embedded !on_rep);
  }

(* Part 4e: crash recovery — the same 4-stream flood served with the
   recovery machinery off, with write-ahead journaling + periodic
   checkpoints on (--checkpoint-every 4096), and with a seeded kill
   schedule spliced in.  The figures of merit are the journaling
   overhead ratio (gated in CI at <= 10%), the wall-clock recovery cost
   per crash, and byte-identity of the recovered drain report with the
   crash-free run.                                                        *)

type recovery_bench = {
  rb_events : int;
  rb_off_s : float;  (* recovery machinery off *)
  rb_journal_s : float;  (* on-disk journal + checkpoints on *)
  rb_crashes : int;
  rb_recovery_us : float;  (* mean wall-clock per recovered crash *)
  rb_identical : bool;  (* crash run == crash-free, byte-for-byte *)
}

let bench_recovery () =
  let target = Vapor_targets.Sse.target in
  let trace = Trace.standard ~length:bench_replay_length ~n_targets:1 () in
  let cfg = replay_cfg ~engine:Tiered.Fast ~guard:Tiered.no_guard target in
  let wl = Workload.of_trace ~streams:4 trace in
  let off_cfg = Serve.default_cfg cfg in
  let mk ?(crash_at = []) ?journal_dir () =
    {
      off_cfg with
      Serve.sv_checkpoint_every = 4096;
      sv_journal_dir = journal_dir;
      sv_crash_at = crash_at;
    }
  in
  let off_s = best_of_3 (fun () -> ignore (Serve.run off_cfg wl)) in
  let dir = Filename.temp_dir "vapor_bench_journal" ".tmp" in
  let on_s =
    best_of_3 (fun () -> ignore (Serve.run (mk ~journal_dir:dir ()) wl))
  in
  (* The kill schedule spreads eight crashes across the run; the journal
     stays memory-only here so the measured delta is recovery work
     (restore + replay), not disk traffic. *)
  let kills = List.init 8 (fun i -> 100 + (i * 230)) in
  let base_rep = ref (Serve.run (mk ()) wl) in
  let base_s = best_of_3 (fun () -> base_rep := Serve.run (mk ()) wl) in
  let crash_rep = ref (Serve.run (mk ~crash_at:kills ()) wl) in
  let crash_s =
    best_of_3 (fun () -> crash_rep := Serve.run (mk ~crash_at:kills ()) wl)
  in
  let crashes = !crash_rep.Serve.sr_crashes in
  {
    rb_events = Workload.total wl;
    rb_off_s = off_s;
    rb_journal_s = on_s;
    rb_crashes = crashes;
    rb_recovery_us =
      (if crashes = 0 then 0.0
       else max 0.0 (crash_s -. base_s) *. 1e6 /. float_of_int crashes);
    rb_identical =
      String.equal
        (Serve.report_to_string !base_rep)
        (Serve.report_to_string !crash_rep);
  }

(* Part 4f: the heterogeneous fleet — one trace served across a mixed
   population of all seven target archetypes with mid-trace capability
   upgrades (sse->avx512, neon->sve).  Figures of merit: mixed-population
   serving throughput, rejuvenated bodies recompiled on the upgraded
   targets, the per-target traffic/JIT split, byte-identity of the drain
   report across domain counts, and (without upgrades, over a persistent
   store) a warm second fleet run that recompiles nothing.                *)

type fleet_bench = {
  fl_events : int;
  fl_machines : int;
  fl_s : float;
  fl_rejuvenations : int;
  fl_targets : (string * int * int) list;  (* name, invocations, jit runs *)
  fl_identical_domains : bool;
  fl_warm_real_compiles : int;
  fl_warm_identical : bool;
}

let fleet_population () =
  let module T = Vapor_targets.Target in
  [
    Vapor_targets.Scalar_target.target;
    Vapor_targets.Sse.target;
    Vapor_targets.Avx.target;
    Vapor_targets.Neon.target;
    Vapor_targets.Altivec.target;
    T.resolve ~vl:16 Vapor_targets.Sve.target;
    Vapor_targets.Avx512.target;
  ]

let bench_fleet () =
  let module T = Vapor_targets.Target in
  let population = fleet_population () in
  let machines = List.length population in
  let trace =
    Trace.standard ~length:bench_replay_length ~n_targets:machines ()
  in
  let upgrades =
    [
      bench_replay_length / 3, Vapor_targets.Sse.target,
      Vapor_targets.Avx512.target;
      bench_replay_length / 3, Vapor_targets.Neon.target,
      T.resolve Vapor_targets.Sve.target;
    ]
  in
  let cfg =
    {
      (Service.default_config ~targets:population) with
      Service.cfg_engine = Tiered.Fast;
      cfg_retargets = upgrades;
    }
  in
  let wl = Workload.of_trace ~streams:4 trace in
  let run domains = Serve.run { (Serve.default_cfg cfg) with Serve.sv_domains = domains } wl in
  let rep = ref (run 1) in
  let s = best_of_3 (fun () -> rep := run 1) in
  let embedded r = Service.report_to_string r.Serve.sr_service in
  let identical =
    let base = embedded !rep in
    List.for_all (fun d -> String.equal base (embedded (run d))) [ 2; 4 ]
  in
  let per_target =
    List.fold_left
      (fun acc (r : Service.kernel_row) ->
        let inv, jit =
          try List.assoc r.Service.kr_target acc with Not_found -> 0, 0
        in
        (r.Service.kr_target,
         (inv + r.Service.kr_invocations, jit + r.Service.kr_jit_runs))
        :: List.remove_assoc r.Service.kr_target acc)
      []
      !rep.Serve.sr_service.Service.rp_rows
    |> List.map (fun (t, (i, j)) -> t, i, j)
    |> List.sort compare
  in
  (* Warm identity: the steady-state (post-upgrade) fleet over one
     persistent store — the second run must load every body from disk.
     No retargets here: an upgrade deliberately quarantines the old
     target's stored entries, which is the opposite of a warm start. *)
  let open_store dir =
    match Store.open_store ~create:true dir with
    | Ok s -> s
    | Error m -> failwith ("bench fleet store: " ^ m)
  in
  let dir = Filename.temp_dir "vapor_bench_fleet" ".store" in
  let store_cfg store =
    {
      (Service.default_config ~targets:population) with
      Service.cfg_engine = Tiered.Fast;
      cfg_hotness = 0;
      cfg_store = Some store;
    }
  in
  let short = Trace.standard ~length:store_bench_length ~n_targets:machines () in
  let cold_report =
    Service.report_to_string (Service.replay (store_cfg (open_store dir)) short)
  in
  let warm_stats = Stats.create () in
  let warm_report =
    Service.report_to_string
      (Service.replay ~stats:warm_stats (store_cfg (open_store dir)) short)
  in
  let gauge name = Option.value ~default:0.0 (Stats.gauge warm_stats name) in
  {
    fl_events = Workload.total wl;
    fl_machines = machines;
    fl_s = s;
    fl_rejuvenations = !rep.Serve.sr_service.Service.rp_rejuvenations;
    fl_targets = per_target;
    fl_identical_domains = identical;
    fl_warm_real_compiles = int_of_float (gauge "jit.real_compiles");
    fl_warm_identical = String.equal cold_report warm_report;
  }

(* ---------------------------------------------------------------------- *)
(* Part 5: the JIT cost profiler — per-target aggregates of the per-stage
   compile pipeline costs over the whole suite.  Wall-clock stage sums are
   measured; code bytes, modeled compile time, and the amortized compile
   share come from the runtime's deterministic cost models.               *)

module Jit_report = Vapor_harness.Jit_report

type jit_profile_summary = {
  jp_target : string;
  jp_kernels : int;
  jp_stage_ns : float;  (* lower+emit+regalloc+prepare, summed *)
  jp_code_bytes : int;
  jp_model_us : float;
  jp_mean_share : float;  (* mean compile share at 1000 invocations *)
}

let run_jit_profile () =
  Printf.printf "\nJIT cost profile (per-target aggregates over the suite)\n";
  Printf.printf "=======================================================\n";
  Printf.printf
    "(stage ns = lower+emit+regalloc+prepare wall time, summed; share = \n\
    \ modeled compile share of total cost after 1000 invocations)\n\n%!";
  let summaries =
    List.map
      (fun (target : Vapor_targets.Target.t) ->
        let rows =
          Jit_report.run ~repeats:1 ~targets:[ target ]
            ~profile:Profile.gcc4cli ()
        in
        let open Jit_report in
        let n = List.length rows in
        let stage_ns =
          List.fold_left
            (fun a r ->
              a +. r.jr_lower_ns +. r.jr_emit_ns +. r.jr_regalloc_ns
              +. r.jr_prepare_ns)
            0.0 rows
        in
        let bytes = List.fold_left (fun a r -> a + r.jr_code_bytes) 0 rows in
        let model_us =
          List.fold_left (fun a r -> a +. r.jr_compile_us) 0.0 rows
        in
        let share =
          List.fold_left (fun a r -> a +. r.jr_compile_share) 0.0 rows
          /. float_of_int (max 1 n)
        in
        {
          jp_target = target.Vapor_targets.Target.name;
          jp_kernels = n;
          jp_stage_ns = stage_ns;
          jp_code_bytes = bytes;
          jp_model_us = model_us;
          jp_mean_share = share;
        })
      Vapor_targets.Scalar_target.all
  in
  Printf.printf "  %-8s %8s %14s %11s %11s %11s\n" "target" "kernels"
    "stage ns" "code bytes" "model us" "mean share";
  List.iter
    (fun s ->
      Printf.printf "  %-8s %8d %14.0f %11d %11.1f %10.2f%%\n" s.jp_target
        s.jp_kernels s.jp_stage_ns s.jp_code_bytes s.jp_model_us
        (100.0 *. s.jp_mean_share))
    summaries;
  summaries

let run_fastpath_bench ~json () =
  Printf.printf "\nFast-path engine wall-clock benchmark\n";
  Printf.printf "=====================================\n";
  Printf.printf
    "(slot-compiled bodies + pre-resolved plans vs the reference engine;\n\
    \ real elapsed time, not modeled cycles)\n\n%!";
  let veval_ns, vfast_ns = micro_interp () in
  Printf.printf "  interpreter (sfir_fp, v16)  %10.0f ns/run reference  \
                 %10.0f ns/run slots  (%.1fx)\n%!"
    veval_ns vfast_ns (veval_ns /. vfast_ns);
  let run_ns, plan_ns = micro_simulator () in
  Printf.printf "  simulator   (sfir_fp, sse)  %10.0f ns/run reference  \
                 %10.0f ns/run plan   (%.1fx)\n\n%!"
    run_ns plan_ns (run_ns /. plan_ns);
  let replay_rows =
    List.map bench_replay_target Vapor_targets.Scalar_target.all_simd
  in
  Printf.printf "  %-8s %16s %16s %9s\n" "target" "ref events/s"
    "fast events/s" "speedup";
  List.iter
    (fun ((t : Vapor_targets.Target.t), ref_ps, fast_ps, speedup) ->
      Printf.printf "  %-8s %16.0f %16.0f %8.2fx\n" t.Vapor_targets.Target.name
        ref_ps fast_ps speedup)
    replay_rows;
  let headline =
    match
      List.find_opt
        (fun ((t : Vapor_targets.Target.t), _, _, _) ->
          t.Vapor_targets.Target.name = "sse")
        replay_rows
    with
    | Some (_, _, _, s) -> s
    | None -> (match replay_rows with (_, _, _, s) :: _ -> s | [] -> 0.0)
  in
  Printf.printf "\n  headline replay speedup (sse): %.2fx\n%!" headline;
  let cores, domain_rows = bench_domains () in
  Printf.printf "\n  %-8s %16s %9s %10s   (%d cores)\n" "domains" "events/s"
    "speedup" "identical" cores;
  List.iter
    (fun (d, per_s, speedup, same) ->
      Printf.printf "  %-8d %16.0f %8.2fx %10s\n" d per_s speedup
        (if same then "yes" else "NO"))
    domain_rows;
  let unguarded_s, guarded_s, overhead = bench_oracle () in
  Printf.printf
    "\n  oracle overhead: %.3fs unguarded -> %.3fs guarded (%.2fx)\n%!"
    unguarded_s guarded_s overhead;
  if not (List.for_all (fun (_, _, _, same) -> same) domain_rows) then begin
    Printf.printf "FAIL: sharded replay reports differ across domain counts\n";
    exit 1
  end;
  let vb = bench_serve () in
  Printf.printf
    "\n  serving (%d events, %d streams): %.0f events/s, %d answered, %d \
     lost\n"
    vb.vb_events vb.vb_streams
    (float_of_int vb.vb_events /. vb.vb_s)
    vb.vb_answered vb.vb_lost;
  Printf.printf "  drained report %s replay, chaos conservation %s\n%!"
    (if vb.vb_identical then "identical to" else "DIFFERS from")
    (if vb.vb_chaos_conserved then "holds" else "VIOLATED");
  if vb.vb_lost <> 0 || not vb.vb_identical || not vb.vb_chaos_conserved
  then begin
    Printf.printf
      "FAIL: serving layer lost events, diverged from replay, or leaked \
       chaos\n";
    exit 1
  end;
  let tb = bench_batch () in
  Printf.printf
    "  batched dispatch (%d events, %d streams): %.0f ev/s off -> %.0f \
     ev/s on (%.2fx), mean batch %.2f, report %s\n%!"
    tb.tb_events tb.tb_streams
    (float_of_int tb.tb_events /. tb.tb_off_s)
    (float_of_int tb.tb_events /. tb.tb_on_s)
    (tb.tb_off_s /. tb.tb_on_s)
    tb.tb_mean_batch
    (if tb.tb_identical then "identical" else "DIFFERS");
  if not tb.tb_identical then begin
    Printf.printf
      "FAIL: batched dispatch changed the embedded replay report\n";
    exit 1
  end;
  let rb = bench_recovery () in
  Printf.printf
    "  crash recovery (%d events): %.0f ev/s bare -> %.0f ev/s journaled \
     (%.1f%% overhead), %d crashes recovered at %.0f us each, report %s\n%!"
    rb.rb_events
    (float_of_int rb.rb_events /. rb.rb_off_s)
    (float_of_int rb.rb_events /. rb.rb_journal_s)
    (100.0 *. ((rb.rb_journal_s /. rb.rb_off_s) -. 1.0))
    rb.rb_crashes rb.rb_recovery_us
    (if rb.rb_identical then "identical" else "DIFFERS");
  if not rb.rb_identical then begin
    Printf.printf
      "FAIL: recovered drain report diverged from the crash-free run\n";
    exit 1
  end;
  let sb = bench_store () in
  let per_s x = float_of_int sb.sb_events /. x in
  Printf.printf
    "\n  persistent store (%d events, hotness 0): cold %.0f ev/s -> warm \
     %.0f ev/s (%.2fx)\n"
    sb.sb_events (per_s sb.sb_cold_s) (per_s sb.sb_warm_s)
    (sb.sb_cold_s /. sb.sb_warm_s);
  Printf.printf
    "  warm run: %d real compiles, store hit rate %.2f, report %s\n%!"
    sb.sb_warm_real_compiles sb.sb_warm_hit_rate
    (if sb.sb_identical then "identical" else "DIFFERS");
  if sb.sb_warm_real_compiles <> 0 || not sb.sb_identical then begin
    Printf.printf
      "FAIL: warm store replay must recompile nothing and match cold\n";
    exit 1
  end;
  let fl = bench_fleet () in
  Printf.printf
    "\n  fleet (%d events, %d machines): %.0f events/s, %d bodies \
     rejuvenated on upgrade, domains report %s\n"
    fl.fl_events fl.fl_machines
    (float_of_int fl.fl_events /. fl.fl_s)
    fl.fl_rejuvenations
    (if fl.fl_identical_domains then "identical" else "DIFFERS");
  Printf.printf "  %-10s %12s %10s\n" "target" "invocations" "jit runs";
  List.iter
    (fun (t, inv, jit) -> Printf.printf "  %-10s %12d %10d\n" t inv jit)
    fl.fl_targets;
  Printf.printf "  warm fleet over store: %d real compiles, report %s\n%!"
    fl.fl_warm_real_compiles
    (if fl.fl_warm_identical then "identical" else "DIFFERS");
  if
    (not fl.fl_identical_domains)
    || fl.fl_warm_real_compiles <> 0
    || (not fl.fl_warm_identical)
    || fl.fl_rejuvenations = 0
  then begin
    Printf.printf
      "FAIL: fleet replay must be domain-invariant, rejuvenate upgraded \
       bodies, and warm-start from the store without recompiling\n";
    exit 1
  end;
  let jit_rows = run_jit_profile () in
  if json then begin
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "{\n";
    Printf.bprintf buf "  \"micro\": {\n";
    Printf.bprintf buf "    \"interp_reference_ns_per_run\": %.1f,\n" veval_ns;
    Printf.bprintf buf "    \"interp_slots_ns_per_run\": %.1f,\n" vfast_ns;
    Printf.bprintf buf "    \"interp_speedup\": %.2f,\n"
      (veval_ns /. vfast_ns);
    Printf.bprintf buf "    \"simulator_reference_ns_per_run\": %.1f,\n" run_ns;
    Printf.bprintf buf "    \"simulator_plan_ns_per_run\": %.1f,\n" plan_ns;
    Printf.bprintf buf "    \"simulator_speedup\": %.2f\n"
      (run_ns /. plan_ns);
    Printf.bprintf buf "  },\n";
    Printf.bprintf buf "  \"replay\": [\n";
    List.iteri
      (fun i ((t : Vapor_targets.Target.t), ref_ps, fast_ps, speedup) ->
        Printf.bprintf buf
          "    {\"target\": \"%s\", \"events\": %d, \
           \"reference_events_per_s\": %.0f, \"fast_events_per_s\": %.0f, \
           \"speedup\": %.2f}%s\n"
          t.Vapor_targets.Target.name bench_replay_length ref_ps fast_ps
          speedup
          (if i = List.length replay_rows - 1 then "" else ","))
      replay_rows;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf "  \"headline_replay_speedup\": %.2f,\n" headline;
    Printf.bprintf buf "  \"cores\": %d,\n" cores;
    Printf.bprintf buf "  \"domains\": [\n";
    List.iteri
      (fun i (d, per_s, speedup, same) ->
        Printf.bprintf buf
          "    {\"domains\": %d, \"events_per_s\": %.0f, \
           \"speedup_vs_1\": %.2f, \"report_identical\": %b}%s\n"
          d per_s speedup same
          (if i = List.length domain_rows - 1 then "" else ","))
      domain_rows;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf
      "  \"serve\": {\"events\": %d, \"streams\": %d, \"events_per_s\": \
       %.0f, \"answered\": %d, \"lost\": %d, \"report_identical\": %b, \
       \"chaos_conserved\": %b},\n"
      vb.vb_events vb.vb_streams
      (float_of_int vb.vb_events /. vb.vb_s)
      vb.vb_answered vb.vb_lost vb.vb_identical vb.vb_chaos_conserved;
    Printf.bprintf buf
      "  \"batch\": {\"events\": %d, \"streams\": %d, \
       \"unbatched_events_per_s\": %.0f, \"batched_events_per_s\": %.0f, \
       \"speedup\": %.2f, \"mean_batch_size\": %.2f, \
       \"report_identical\": %b},\n"
      tb.tb_events tb.tb_streams
      (float_of_int tb.tb_events /. tb.tb_off_s)
      (float_of_int tb.tb_events /. tb.tb_on_s)
      (tb.tb_off_s /. tb.tb_on_s)
      tb.tb_mean_batch tb.tb_identical;
    Printf.bprintf buf
      "  \"recovery\": {\"events\": %d, \"bare_events_per_s\": %.0f, \
       \"journaled_events_per_s\": %.0f, \"journal_overhead\": %.3f, \
       \"crashes\": %d, \"recovery_us_per_crash\": %.1f, \
       \"report_identical\": %b},\n"
      rb.rb_events
      (float_of_int rb.rb_events /. rb.rb_off_s)
      (float_of_int rb.rb_events /. rb.rb_journal_s)
      (rb.rb_journal_s /. rb.rb_off_s)
      rb.rb_crashes rb.rb_recovery_us rb.rb_identical;
    Printf.bprintf buf
      "  \"oracle\": {\"unguarded_s\": %.4f, \"guarded_s\": %.4f, \
       \"overhead_factor\": %.2f},\n"
      unguarded_s guarded_s overhead;
    Printf.bprintf buf
      "  \"store\": {\"events\": %d, \"cold_events_per_s\": %.0f, \
       \"warm_events_per_s\": %.0f, \"warm_speedup\": %.2f, \
       \"warm_real_compiles\": %d, \"warm_hit_rate\": %.2f, \
       \"report_identical\": %b},\n"
      sb.sb_events (per_s sb.sb_cold_s) (per_s sb.sb_warm_s)
      (sb.sb_cold_s /. sb.sb_warm_s)
      sb.sb_warm_real_compiles sb.sb_warm_hit_rate sb.sb_identical;
    Printf.bprintf buf
      "  \"fleet\": {\"events\": %d, \"machines\": %d, \"events_per_s\": \
       %.0f, \"rejuvenations\": %d, \"report_identical\": %b, \
       \"warm_real_compiles\": %d, \"warm_report_identical\": %b, \
       \"targets\": [\n"
      fl.fl_events fl.fl_machines
      (float_of_int fl.fl_events /. fl.fl_s)
      fl.fl_rejuvenations fl.fl_identical_domains fl.fl_warm_real_compiles
      fl.fl_warm_identical;
    List.iteri
      (fun i (t, inv, jit) ->
        Printf.bprintf buf
          "    {\"target\": \"%s\", \"invocations\": %d, \"jit_runs\": \
           %d}%s\n"
          t inv jit
          (if i = List.length fl.fl_targets - 1 then "" else ","))
      fl.fl_targets;
    Printf.bprintf buf "  ]},\n";
    Printf.bprintf buf "  \"jit_profile\": [\n";
    List.iteri
      (fun i s ->
        Printf.bprintf buf
          "    {\"target\": \"%s\", \"kernels\": %d, \"stage_ns\": %.0f, \
           \"code_bytes\": %d, \"model_compile_us\": %.1f, \
           \"mean_compile_share\": %.6f}%s\n"
          s.jp_target s.jp_kernels s.jp_stage_ns s.jp_code_bytes s.jp_model_us
          s.jp_mean_share
          (if i = List.length jit_rows - 1 then "" else ","))
      jit_rows;
    Printf.bprintf buf "  ]\n";
    Printf.bprintf buf "}\n";
    let oc = open_out "BENCH.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "  wrote BENCH.json\n%!"
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  match args with
  | [ "bench-replay" ] -> run_fastpath_bench ~json ()
  | [ "quick" ] ->
    run_experiments ();
    run_replay ();
    run_chaos_replay ();
    if json then run_fastpath_bench ~json ()
  | _ ->
    run_experiments ();
    run_replay ();
    run_chaos_replay ();
    run_fastpath_bench ~json ();
    run_benchmarks ()
