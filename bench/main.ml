(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V), then times the toolchain's own stages with
   Bechamel — one benchmark per reproduced table/figure.

     dune exec bench/main.exe            full experiments + microbenchmarks
     dune exec bench/main.exe -- quick   experiments only *)

module E = Vapor_harness.Experiments
module R = Vapor_harness.Report
module Suite = Vapor_kernels.Suite
module Flows = Vapor_harness.Flows
module Driver = Vapor_vectorizer.Driver
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Iaca = Vapor_machine.Iaca

let scale = 2

(* ---------------------------------------------------------------------- *)
(* Part 1: the paper's tables and figures.                                 *)

let run_experiments () =
  Printf.printf
    "Vapor SIMD reproduction: auto-vectorize once, run everywhere\n";
  Printf.printf
    "=============================================================\n";
  Printf.printf "(workload scale %d; see EXPERIMENTS.md for the\n" scale;
  Printf.printf " paper-vs-measured comparison of every row)\n";

  let rows, mean = E.fig5 ~target:Vapor_targets.Sse.target ~scale in
  R.print_rows
    ~title:"Figure 5a: Mono normalized vectorization impact, SSE (128-bit)"
    ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;

  let rows, mean = E.fig5 ~target:Vapor_targets.Altivec.target ~scale in
  R.print_rows
    ~title:
      "Figure 5b: Mono normalized vectorization impact, AltiVec (128-bit)"
    ~value_label:"higher is better" ~mean_label:"Arith. Mean" ~mean rows;

  List.iter
    (fun (tag, target) ->
      let rows, mean = E.fig6 ~target ~scale in
      R.print_rows
        ~title:
          (Printf.sprintf
             "Figure 6%s: gcc4cli normalized execution time, %s" tag
             target.Vapor_targets.Target.name)
        ~value_label:"lower is better" ~mean_label:"Har. Mean" ~mean rows)
    [
      "a (128-bit)", Vapor_targets.Sse.target;
      "b (128-bit)", Vapor_targets.Altivec.target;
      "c (64-bit)", Vapor_targets.Neon.target;
    ];

  R.print_table3 (E.table3 ());

  List.iter
    (fun target ->
      let rows, mean = E.ablation ~target ~scale in
      R.print_rows
        ~title:
          (Printf.sprintf
             "Section V-A.b ablation: alignment optimizations disabled, %s"
             target.Vapor_targets.Target.name)
        ~value_label:"degradation factor" ~mean_label:"Average" ~mean rows)
    [ Vapor_targets.Sse.target; Vapor_targets.Altivec.target ];

  R.print_design_ablations
    (E.design_ablations ~target:Vapor_targets.Altivec.target ~scale);

  R.print_compile_stats (E.compile_stats ())

(* ---------------------------------------------------------------------- *)
(* Part 2: the runtime subsystem — replay a standard seeded trace through
   the tiered (interpreter -> JIT) runtime with the content-addressed code
   cache, once per SIMD target, and report what a managed runtime
   amortizes: JIT compile cost per invocation and cache hit rate.          *)

module Service = Vapor_runtime.Service
module Trace = Vapor_runtime.Trace

let replay_trace_length = 400
let replay_hotness = 3

let run_replay () =
  Printf.printf "\nTiered runtime replay (standard trace, %d events)\n"
    replay_trace_length;
  Printf.printf "=================================================\n";
  Printf.printf
    "(hotness threshold %d; cache 64 entries / 256 KiB; mono profile)\n\n"
    replay_hotness;
  let trace =
    Trace.standard ~length:replay_trace_length ~n_targets:1 ()
  in
  let reports =
    List.map
      (fun target ->
        let cfg =
          {
            (Service.default_config ~targets:[ target ]) with
            Service.cfg_hotness = replay_hotness;
          }
        in
        target, Service.replay cfg trace)
      Vapor_targets.Scalar_target.all_simd
  in
  Printf.printf "  %-8s %6s %9s %9s %11s %11s %10s %9s\n" "target" "inv"
    "hit rate" "evict" "cold us" "amort us" "amortized" "promoted";
  List.iter
    (fun ((target : Vapor_targets.Target.t), rp) ->
      let promoted =
        List.length
          (List.filter
             (fun (r : Service.kernel_row) -> r.Service.kr_promoted_at <> None)
             rp.Service.rp_rows)
      in
      Printf.printf "  %-8s %6d %8.1f%% %9d %11.2f %11.3f %9.0fx %5d/%-3d\n"
        target.Vapor_targets.Target.name rp.Service.rp_invocations
        (100.0 *. rp.Service.rp_hit_rate)
        rp.Service.rp_evictions rp.Service.rp_cold_compile_us
        rp.Service.rp_amortized_us
        (Service.amortization_factor rp)
        promoted
        (List.length rp.Service.rp_rows))
    reports;
  match reports with
  | (target, rp) :: _ ->
    Printf.printf "\ntier breakdown, %s (interpreter -> JIT promotion):\n"
      target.Vapor_targets.Target.name;
    Service.print_tier_table rp
  | [] -> ()

(* Part 2b: guarded execution under injected faults — the same trace with
   the differential oracle checking every JIT run while bodies are
   corrupted and compiles transiently fail.  The figure of merit is the
   throughput cost of surviving every fault with zero wrong outputs.      *)

module Tiered = Vapor_runtime.Tiered
module Faults = Vapor_runtime.Faults

let run_chaos_replay () =
  Printf.printf "\nGuarded replay under injected faults (seeded chaos)\n";
  Printf.printf "===================================================\n";
  Printf.printf
    "(oracle on every JIT run; 5%% body corruption, 25%% transient \
     compile faults)\n\n";
  let trace =
    Trace.standard ~length:replay_trace_length ~n_targets:1 ()
  in
  Printf.printf "  %-8s %6s %8s %11s %11s %8s %8s %10s\n" "target" "inv"
    "checks" "mismatches" "quarantines" "retries" "demoted" "thru cost";
  List.iter
    (fun (target : Vapor_targets.Target.t) ->
      let healthy_cfg =
        {
          (Service.default_config ~targets:[ target ]) with
          Service.cfg_hotness = replay_hotness;
        }
      in
      let healthy = Service.replay healthy_cfg trace in
      let faults = Faults.make (Faults.chaos_spec ~seed:1) in
      let cfg =
        {
          healthy_cfg with
          Service.cfg_guard =
            {
              Tiered.g_oracle = Some Tiered.oracle_always;
              g_faults = Some faults;
              g_retry_budget = 3;
            };
        }
      in
      let rp = Service.replay cfg trace in
      let cost =
        if Service.throughput rp <= 0.0 then Float.infinity
        else Service.throughput healthy /. Service.throughput rp
      in
      Printf.printf "  %-8s %6d %8d %11d %11d %8d %8d %9.2fx\n"
        target.Vapor_targets.Target.name rp.Service.rp_invocations
        rp.Service.rp_oracle_checks rp.Service.rp_oracle_mismatches
        rp.Service.rp_quarantines rp.Service.rp_retries
        rp.Service.rp_demotions cost)
    Vapor_targets.Scalar_target.all_simd

(* ---------------------------------------------------------------------- *)
(* Part 3: Bechamel microbenchmarks of the pipeline stages that produce
   each table — offline vectorization, JIT compilation, simulation.        *)

open Bechamel
open Toolkit

let kernel_of name = Suite.kernel (Suite.find name)

let bench_fig5_flow () =
  (* One full Figure-5 data point: the four flows for one kernel. *)
  let entry = Suite.find "saxpy_fp" in
  ignore (E.fig5_impact ~target:Vapor_targets.Sse.target ~scale:1 entry)

let bench_fig6_flow () =
  let entry = Suite.find "jacobi_fp" in
  ignore (E.fig6_ratio ~target:Vapor_targets.Altivec.target ~scale:1 entry)

let bench_offline_vectorizer () =
  (* The offline stage (uncached) on a representative kernel. *)
  ignore (Driver.vectorize (kernel_of "interp_s16"))

let bench_jit_compile () =
  (* Table 3's producer: online compilation of one kernel for AVX. *)
  let bytecode =
    (Flows.vectorized_bytecode (Suite.find "sfir_fp")).Driver.vkernel
  in
  let c =
    Compile.compile ~target:Vapor_targets.Avx.target ~profile:Profile.avx_split
      bytecode
  in
  ignore (Iaca.vector_loop_cycles Vapor_targets.Avx.target c.Compile.mfun)

let bench_codec () =
  (* The bytecode-size table's producer: encode + decode round trip. *)
  let bytecode =
    (Flows.vectorized_bytecode (Suite.find "mmm_fp")).Driver.vkernel
  in
  ignore (Vapor_vecir.Encode.decode (Vapor_vecir.Encode.encode bytecode))

let benchmarks =
  Test.make_grouped ~name:"vapor"
    [
      Test.make ~name:"fig5-datapoint" (Staged.stage bench_fig5_flow);
      Test.make ~name:"fig6-datapoint" (Staged.stage bench_fig6_flow);
      Test.make ~name:"offline-vectorize"
        (Staged.stage bench_offline_vectorizer);
      Test.make ~name:"table3-jit+iaca" (Staged.stage bench_jit_compile);
      Test.make ~name:"sizes-codec" (Staged.stage bench_codec);
    ]

let run_benchmarks () =
  Printf.printf "\nBechamel microbenchmarks (toolchain stages)\n";
  Printf.printf "===========================================\n%!";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        tbl)
    instances

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  run_experiments ();
  run_replay ();
  run_chaos_replay ();
  if not quick then run_benchmarks ()
