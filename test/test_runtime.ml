(* Tests for the runtime subsystem: content digests, the LRU code cache,
   tiered execution, trace generation, and replay-service invariants. *)

open Vapor_ir
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Encode = Vapor_vecir.Encode
module D = Vapor_runtime.Digest
module Stats = Vapor_runtime.Stats
module Cache = Vapor_runtime.Code_cache
module Tiered = Vapor_runtime.Tiered
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service

let sse = Vapor_targets.Sse.target
let avx = Vapor_targets.Avx.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bytecode name =
  (Flows.vectorized_bytecode (Suite.find name)).Driver.vkernel

(* --- digest stability --------------------------------------------------- *)

let digest_stable_case () =
  let vk = bytecode "saxpy_fp" in
  check_bool "same kernel digests equal" true
    (D.equal (D.of_vkernel vk) (D.of_vkernel vk))

let digest_roundtrip_case () =
  (* The digest must survive an encode -> decode -> encode round trip:
     compiled code cached for a .vbc file is found again after reloading. *)
  List.iter
    (fun name ->
      let vk = bytecode name in
      let vk' = Encode.decode (Encode.encode vk) in
      if not (D.equal (D.of_vkernel vk) (D.of_vkernel vk')) then
        fail (name ^ ": digest changed across encode/decode round trip"))
    [ "saxpy_fp"; "interp_s16"; "mmm_fp"; "dissolve_s8" ]

let digest_distinct_case () =
  (* Any two distinct suite kernels must have distinct digests. *)
  let digests =
    List.map
      (fun e -> e.Suite.name, D.of_vkernel (bytecode e.Suite.name))
      Suite.all
  in
  List.iteri
    (fun i (n1, d1) ->
      List.iteri
        (fun j (n2, d2) ->
          if i < j && D.equal d1 d2 then
            fail (Printf.sprintf "%s and %s share a digest" n1 n2))
        digests)
    digests

let digest_key_case () =
  let vk = bytecode "saxpy_fp" in
  let k1 = D.key ~target:sse ~profile:Profile.mono vk in
  let k2 = D.key ~target:sse ~profile:Profile.mono vk in
  let k3 = D.key ~target:avx ~profile:Profile.mono vk in
  check_bool "same key equal" true (D.key_equal k1 k2);
  check_int "same key same hash" (D.key_hash k1) (D.key_hash k2);
  check_bool "different target different key" false (D.key_equal k1 k3)

(* --- stats -------------------------------------------------------------- *)

let stats_case () =
  let st = Stats.create () in
  Stats.incr st "a";
  Stats.incr ~by:4 st "a";
  check_int "counter accumulates" 5 (Stats.counter st "a");
  check_int "unknown counter is 0" 0 (Stats.counter st "b");
  Stats.observe st "h" 2.0;
  Stats.observe st "h" 6.0;
  (match Stats.summary st "h" with
  | None -> fail "histogram missing"
  | Some s ->
    check_int "histogram count" 2 s.Stats.s_count;
    Alcotest.(check (float 1e-9)) "histogram mean" 4.0 s.Stats.s_mean);
  Stats.reset st;
  check_int "reset clears" 0 (Stats.counter st "a")

(* --- code cache --------------------------------------------------------- *)

let cache_hit_miss_case () =
  let cache = Cache.create () in
  let vk = bytecode "saxpy_fp" in
  let c1, o1 = Cache.find_or_compile cache ~target:sse ~profile:Profile.mono vk in
  let c2, o2 = Cache.find_or_compile cache ~target:sse ~profile:Profile.mono vk in
  check_bool "first is a miss" true (o1 = Cache.Miss);
  check_bool "second is a hit" true (o2 = Cache.Hit);
  check_bool "hit returns the same compiled body" true (c1 == c2);
  let _, o3 = Cache.find_or_compile cache ~target:avx ~profile:Profile.mono vk in
  check_bool "other target misses" true (o3 = Cache.Miss);
  check_int "hits" 1 (Cache.hits cache);
  check_int "misses" 2 (Cache.misses cache);
  check_int "fills" 2 (Cache.fills cache);
  check_int "entries" 2 (Cache.entry_count cache)

let cache_lru_eviction_case () =
  let cache = Cache.create ~max_entries:2 () in
  let compile name =
    ignore
      (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
         (bytecode name))
  in
  compile "saxpy_fp";
  compile "dscal_fp";
  (* refresh saxpy so dscal is the LRU victim *)
  compile "saxpy_fp";
  compile "sfir_fp";
  check_int "one eviction" 1 (Cache.evictions cache);
  check_int "entry budget held" 2 (Cache.entry_count cache);
  let _, again = Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
      (bytecode "saxpy_fp")
  in
  check_bool "recently-used entry survived" true (again = Cache.Hit);
  let _, evicted = Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
      (bytecode "dscal_fp")
  in
  check_bool "LRU entry was evicted" true (evicted = Cache.Miss)

let cache_byte_budget_case () =
  let vk = bytecode "saxpy_fp" in
  let probe = Cache.create () in
  let _ = Cache.find_or_compile probe ~target:sse ~profile:Profile.mono vk in
  let one_entry = Cache.byte_count probe in
  (* A budget of ~1.5 entries keeps exactly one body resident. *)
  let cache = Cache.create ~max_bytes:(one_entry * 3 / 2) () in
  let compile name =
    ignore
      (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
         (bytecode name))
  in
  compile "saxpy_fp";
  compile "dscal_fp";
  compile "sfir_fp";
  check_bool "byte budget enforced" true
    (Cache.byte_count cache <= one_entry * 3 / 2);
  check_bool "evictions happened" true (Cache.evictions cache >= 1)

let cache_rejuvenation_case () =
  let cache = Cache.create () in
  List.iter
    (fun name ->
      ignore
        (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
           (bytecode name)))
    [ "saxpy_fp"; "dscal_fp" ];
  let relowered = Cache.invalidate_target cache ~from_target:sse ~to_target:avx in
  check_int "both entries re-lowered" 2 relowered;
  check_int "entry count preserved" 2 (Cache.entry_count cache);
  check_int "rejuvenations counted" 2 (Cache.rejuvenations cache);
  (* the rejuvenated body is found under the new target without a compile *)
  let _, o = Cache.find_or_compile cache ~target:avx ~profile:Profile.mono
      (bytecode "saxpy_fp")
  in
  check_bool "avx lookup hits rejuvenated code" true (o = Cache.Hit);
  let _, o = Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
      (bytecode "saxpy_fp")
  in
  check_bool "old target no longer cached" true (o = Cache.Miss)

let cache_evict_hook_case () =
  let seen = ref [] in
  let cache = Cache.create ~max_entries:2 () in
  Cache.set_on_evict cache (fun reason key -> seen := (reason, key) :: !seen);
  let key_of name = D.key ~target:sse ~profile:Profile.mono (bytecode name) in
  let saw reason name =
    List.exists
      (fun (r, k) -> r = reason && D.key_equal k (key_of name))
      !seen
  in
  let compile name =
    ignore
      (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono
         (bytecode name))
  in
  compile "saxpy_fp";
  compile "dscal_fp";
  compile "sfir_fp";
  check_bool "budget eviction fires the hook" true (saw Cache.Lru "saxpy_fp");
  (* Replacing an entry under its own key reports Replaced, not Lru. *)
  let vk = bytecode "sfir_fp" in
  let key = key_of "sfir_fp" in
  (match Cache.find cache key with
  | Some c -> Cache.insert cache key vk Profile.mono c
  | None -> fail "sfir_fp should be resident");
  check_bool "replacement fires the hook" true (saw Cache.Replaced "sfir_fp");
  (* invalidate_target no longer drops entries silently: each stale body
     fires the hook and bumps cache.invalidations, even though it is
     re-lowered rather than discarded. *)
  let before = List.length !seen in
  let relowered = Cache.invalidate_target cache ~from_target:sse ~to_target:avx in
  check_int "both stale entries invalidated" 2
    (List.length !seen - before);
  check_int "relowered under the new target" 2 relowered;
  check_int "invalidations counted" 2 (Cache.invalidations cache);
  check_bool "hook saw the invalidation" true
    (List.exists (fun (r, _) -> r = Cache.Invalidated) !seen)

(* --- tiered execution --------------------------------------------------- *)

let copy_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Eval.Scalar v -> n, Eval.Scalar v
      | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
    args

let compare_arrays ~eps name ref_args got_args =
  List.iter2
    (fun (n1, b1) (_, b2) ->
      if not (Buffer_.close ~eps b1 b2) then
        fail (Printf.sprintf "%s: array %s differs" name n1))
    (Suite.arrays_of_args ref_args)
    (Suite.arrays_of_args got_args)

let tiered_promotion_case () =
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let cache = Cache.create () in
  let tiered = Tiered.create ~cache ~hotness_threshold:2 () in
  let invoke () =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk
      ~args:(entry.Suite.args ~scale:1)
  in
  let r1 = invoke () and r2 = invoke () in
  check_bool "run 1 interpreted" true (r1.Tiered.r_tier = Tiered.Interpreter);
  check_bool "run 2 interpreted" true (r2.Tiered.r_tier = Tiered.Interpreter);
  check_bool "no compile charged while cold" true
    (r1.Tiered.r_compile_us = 0.0 && r2.Tiered.r_compile_us = 0.0);
  let r3 = invoke () in
  check_bool "run 3 promoted to jit" true (r3.Tiered.r_tier = Tiered.Jit);
  check_bool "promotion pays the compile" true (r3.Tiered.r_compile_us > 0.0);
  check_bool "promotion was a cache miss" true
    (r3.Tiered.r_cache = Some Cache.Miss);
  let r4 = invoke () in
  check_bool "run 4 hits the cache" true (r4.Tiered.r_cache = Some Cache.Hit);
  check_bool "hit charges no compile" true (r4.Tiered.r_compile_us = 0.0);
  match Tiered.states tiered with
  | [ s ] ->
    check_int "invocations" 4 s.Tiered.ks_invocations;
    check_int "interp runs" 2 s.Tiered.ks_interp_runs;
    check_int "jit runs" 2 s.Tiered.ks_jit_runs;
    (match s.Tiered.ks_transitions with
    | [ tr ] ->
      check_bool "transition to jit" true (tr.Tiered.to_tier = Tiered.Jit);
      check_int "transition at invocation 3" 3 tr.Tiered.at_invocation
    | l -> fail (Printf.sprintf "%d transitions recorded" (List.length l)))
  | l -> fail (Printf.sprintf "%d kernel states" (List.length l))

let tiered_differential_case () =
  (* Both tiers must compute what the scalar reference computes. *)
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let vk = bytecode name in
      let ref_args = entry.Suite.args ~scale:1 in
      ignore (Eval.run (Suite.kernel entry) ~args:ref_args);
      List.iter
        (fun threshold ->
          let cache = Cache.create () in
          let tiered =
            Tiered.create ~cache ~hotness_threshold:threshold ()
          in
          let got_args = copy_args (entry.Suite.args ~scale:1) in
          let r =
            Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk
              ~args:got_args
          in
          let expect =
            if threshold = 0 then Tiered.Jit else Tiered.Interpreter
          in
          check_bool (name ^ " tier") true (r.Tiered.r_tier = expect);
          compare_arrays ~eps:1e-3 name ref_args got_args)
        [ 0; 5 ])
    [ "saxpy_fp"; "interp_s16"; "dissolve_s8" ]

let tiered_migration_case () =
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let cache = Cache.create () in
  let tiered = Tiered.create ~cache ~hotness_threshold:1 () in
  let invoke target =
    Tiered.invoke tiered ~target ~profile:Profile.mono vk
      ~args:(entry.Suite.args ~scale:1)
  in
  ignore (invoke sse);
  ignore (invoke sse);
  (* hot on sse *)
  check_int "one migration" 1
    (Tiered.migrate_target tiered ~from_target:sse ~to_target:avx);
  let r = invoke avx in
  check_bool "hotness carries over to the new target" true
    (r.Tiered.r_tier = Tiered.Jit)

(* --- traces ------------------------------------------------------------- *)

let trace_deterministic_case () =
  let t1 = Trace.standard ~seed:7 ~length:300 ~n_targets:3 () in
  let t2 = Trace.standard ~seed:7 ~length:300 ~n_targets:3 () in
  check_bool "same seed, same trace" true (t1.Trace.tr_events = t2.Trace.tr_events);
  let t3 = Trace.standard ~seed:8 ~length:300 ~n_targets:3 () in
  check_bool "different seed, different trace" false
    (t1.Trace.tr_events = t3.Trace.tr_events)

let trace_shape_case () =
  let t = Trace.standard ~seed:42 ~length:500 ~n_targets:2 () in
  check_int "length" 500 (Trace.length t);
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ev_target < 0 || e.Trace.ev_target >= 2 then
        fail "target index out of range";
      if not (List.mem e.Trace.ev_kernel t.Trace.tr_kernels) then
        fail ("unknown kernel " ^ e.Trace.ev_kernel);
      if e.Trace.ev_scale < 1 then fail "scale < 1")
    t.Trace.tr_events;
  (* Zipf-ish: the most popular kernel beats the least popular clearly. *)
  match Trace.popularity t with
  | [] -> fail "empty popularity"
  | (_, head) :: rest ->
    let tail = List.fold_left (fun _ (_, n) -> n) head rest in
    check_bool "popularity is skewed" true (head >= 3 * tail)

(* --- replay service ----------------------------------------------------- *)

let replay_cfg targets =
  { (Service.default_config ~targets) with Service.cfg_hotness = 3 }

let service_amortization_case () =
  (* The acceptance bar: >90% hit rate, >=10x amortization, and an
     interpreter->JIT promotion for every hot kernel body. *)
  let trace = Trace.standard ~length:300 ~n_targets:1 () in
  let rp = Service.replay (replay_cfg [ sse ]) trace in
  check_int "every event served" 300 rp.Service.rp_invocations;
  check_bool
    (Printf.sprintf "hit rate %.3f > 0.9" rp.Service.rp_hit_rate)
    true
    (rp.Service.rp_hit_rate > 0.9);
  check_bool
    (Printf.sprintf "amortization %.1fx >= 10x" (Service.amortization_factor rp))
    true
    (Service.amortization_factor rp >= 10.0);
  List.iter
    (fun (r : Service.kernel_row) ->
      if r.Service.kr_invocations > 3 && r.Service.kr_promoted_at = None then
        fail (r.Service.kr_kernel ^ ": hot kernel never promoted");
      if r.Service.kr_promoted_at <> None && r.Service.kr_jit_runs = 0 then
        fail (r.Service.kr_kernel ^ ": promoted but never ran on the JIT"))
    rp.Service.rp_rows

let service_deterministic_case () =
  let trace = Trace.standard ~length:150 ~n_targets:1 () in
  let r1 = Service.replay (replay_cfg [ sse ]) trace in
  let r2 = Service.replay (replay_cfg [ sse ]) trace in
  check_int "cycles deterministic" r1.Service.rp_total_cycles
    r2.Service.rp_total_cycles;
  check_int "hits deterministic" r1.Service.rp_hits r2.Service.rp_hits;
  Alcotest.(check (float 1e-9))
    "compile time deterministic" r1.Service.rp_total_compile_us
    r2.Service.rp_total_compile_us;
  check_int "same tier tables" 0
    (compare r1.Service.rp_rows r2.Service.rp_rows)

let service_rejuvenation_case () =
  let trace = Trace.standard ~length:200 ~n_targets:1 () in
  let cfg =
    { (replay_cfg [ sse ]) with Service.cfg_rejuvenate = Some (100, sse, avx) }
  in
  let rp = Service.replay cfg trace in
  check_bool "entries were rejuvenated" true (rp.Service.rp_rejuvenations > 0);
  (* after the switch every surviving body is keyed to the new target *)
  List.iter
    (fun (r : Service.kernel_row) ->
      if not (String.equal r.Service.kr_target "avx") then
        fail (r.Service.kr_kernel ^ " still keyed to " ^ r.Service.kr_target))
    rp.Service.rp_rows;
  (* rejuvenated bodies keep serving without re-interpretation *)
  check_bool "hit rate survives rejuvenation" true
    (rp.Service.rp_hit_rate > 0.9)

let () =
  Alcotest.run "runtime"
    [
      ( "digest",
        [
          Alcotest.test_case "stable" `Quick digest_stable_case;
          Alcotest.test_case "roundtrip" `Quick digest_roundtrip_case;
          Alcotest.test_case "distinct" `Quick digest_distinct_case;
          Alcotest.test_case "keys" `Quick digest_key_case;
        ] );
      "stats", [ Alcotest.test_case "registry" `Quick stats_case ];
      ( "code-cache",
        [
          Alcotest.test_case "hit/miss" `Quick cache_hit_miss_case;
          Alcotest.test_case "lru eviction" `Quick cache_lru_eviction_case;
          Alcotest.test_case "byte budget" `Quick cache_byte_budget_case;
          Alcotest.test_case "rejuvenation" `Quick cache_rejuvenation_case;
          Alcotest.test_case "eviction hook" `Quick cache_evict_hook_case;
        ] );
      ( "tiered",
        [
          Alcotest.test_case "promotion" `Quick tiered_promotion_case;
          Alcotest.test_case "differential" `Quick tiered_differential_case;
          Alcotest.test_case "migration" `Quick tiered_migration_case;
        ] );
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick trace_deterministic_case;
          Alcotest.test_case "shape" `Quick trace_shape_case;
        ] );
      ( "service",
        [
          Alcotest.test_case "amortization" `Quick service_amortization_case;
          Alcotest.test_case "deterministic" `Quick service_deterministic_case;
          Alcotest.test_case "rejuvenation" `Quick service_rejuvenation_case;
        ] );
    ]
