(* Tests for the guarded-execution layer: the differential oracle's
   bit-equality foundation, typed compile/exec error channels with
   scalarize-on-failure, fault injection with quarantine and retry, and
   code-cache budget edge cases. *)

open Vapor_ir
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows
module Exec = Vapor_harness.Exec
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Lower = Vapor_jit.Lower
module Veval = Vapor_vecir.Veval
module Target = Vapor_targets.Target
module D = Vapor_runtime.Digest
module Stats = Vapor_runtime.Stats
module Cache = Vapor_runtime.Code_cache
module Tiered = Vapor_runtime.Tiered
module Faults = Vapor_runtime.Faults
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service

let sse = Vapor_targets.Sse.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bytecode name =
  (Flows.vectorized_bytecode (Suite.find name)).Driver.vkernel

let copy_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Eval.Scalar v -> n, Eval.Scalar v
      | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
    args

let veval_mode (target : Target.t) =
  if Target.has_simd target then Veval.Vector target.Target.vs
  else Veval.Scalarized

let arrays = Suite.arrays_of_args

let check_args_bit_equal ctx a b =
  List.iter2
    (fun (n1, b1) (_, b2) ->
      if not (Buffer_.equal b1 b2) then
        fail (Printf.sprintf "%s: array %s differs bitwise" ctx n1))
    (arrays a) (arrays b)

(* --- the oracle's regression net: suite x targets, interp == JIT ------- *)

let differential_sweep_case () =
  (* Every kernel, every target, both replay profiles: the Veval
     interpreter and the JIT-simulated body must agree bit-for-bit on
     every output buffer.  This is the invariant the runtime's
     differential oracle relies on: any JIT output the interpreter would
     not have produced is a bug (or an injected fault), never noise. *)
  List.iter
    (fun (entry : Suite.entry) ->
      let vk = (Flows.vectorized_bytecode entry).Driver.vkernel in
      List.iter
        (fun (target : Target.t) ->
          List.iter
            (fun (profile : Profile.t) ->
              let ctx =
                Printf.sprintf "%s/%s/%s" entry.Suite.name target.Target.name
                  profile.Profile.name
              in
              let jit_args = entry.Suite.args ~scale:1 in
              let ref_args = copy_args jit_args in
              (match Compile.compile_checked ~target ~profile vk with
              | Error e ->
                fail (ctx ^ ": compile failed: "
                      ^ Compile.lower_error_to_string e)
              | Ok compiled -> (
                match Exec.run_checked target compiled ~args:jit_args with
                | Error e ->
                  fail (ctx ^ ": exec failed: "
                        ^ Exec.exec_error_to_string e)
                | Ok _ -> ()));
              ignore (Veval.run vk ~mode:(veval_mode target) ~args:ref_args);
              check_args_bit_equal ctx ref_args jit_args)
            [ Profile.mono; Profile.gcc4cli ])
        Vapor_targets.Scalar_target.all)
    Suite.all

(* --- typed error channel & scalarize-on-failure ------------------------ *)

let compile_checked_clean_case () =
  let vk = bytecode "saxpy_fp" in
  match Compile.compile_checked ~target:sse ~profile:Profile.mono vk with
  | Error e -> fail ("clean kernel failed: " ^ Compile.lower_error_to_string e)
  | Ok c ->
    check_int "no forced-scalar regions on a clean compile" 0
      (List.length c.Compile.forced_scalar_regions)

let forced_scalar_runs_case () =
  (* A fully de-optimized body (every region forced scalar) must still
     run, and bit-match the scalar interpreter semantics. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let compiled =
    Compile.compile ~force_scalar:(fun _ -> true) ~target:sse
      ~profile:Profile.mono vk
  in
  check_bool "decisions all scalarized" true
    (List.for_all
       (function Lower.Scalarize _ -> true | Lower.Vectorize -> false)
       compiled.Compile.decisions);
  check_bool "forced regions recorded" true
    (compiled.Compile.forced_scalar_regions <> []);
  let jit_args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args jit_args in
  ignore (Exec.run sse compiled ~args:jit_args);
  ignore (Veval.run vk ~mode:Veval.Scalarized ~args:ref_args);
  check_args_bit_equal "forced-scalar saxpy" ref_args jit_args

let run_checked_fault_case () =
  (* A missing scalar argument faults in the simulator; run_checked must
     report it as a typed error and leave the output buffers untouched. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let compiled = Compile.compile ~target:sse ~profile:Profile.mono vk in
  let args = entry.Suite.args ~scale:1 in
  let broken =
    List.filter (fun (_, a) -> match a with Eval.Scalar _ -> false | _ -> true)
      args
  in
  let before = copy_args broken in
  (match Exec.run_checked sse compiled ~args:broken with
  | Ok _ -> fail "expected a simulator fault"
  | Error e -> check_bool "fault stage" true (e.Exec.ee_stage = `Simulate));
  check_args_bit_equal "buffers untouched after fault" before broken

(* --- code-cache budget edge cases -------------------------------------- *)

let cache_key vk target profile =
  {
    D.k_digest = D.of_vkernel vk;
    k_target = target.Target.name;
    k_profile = profile.Profile.name;
  }

let cache_entry_budget_zero_case () =
  (* Entry budget 0 clamps to 1: the cache never loops and never holds
     more than one body; each new insert evicts the previous one. *)
  let cache = Cache.create ~max_entries:0 () in
  let fill name =
    let vk = bytecode name in
    ignore
      (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono vk)
  in
  fill "saxpy_fp";
  check_int "one entry after first fill" 1 (Cache.entry_count cache);
  fill "dscal_fp";
  check_int "still one entry" 1 (Cache.entry_count cache);
  check_int "one eviction" 1 (Cache.evictions cache);
  check_int "two fills" 2 (Cache.fills cache);
  check_int "two misses" 2 (Cache.misses cache)

let cache_byte_budget_tiny_case () =
  (* A byte budget smaller than any single body: the single oversized
     entry is allowed to stay (there is nothing smaller to keep), and a
     second insert still leaves exactly one resident entry. *)
  let cache = Cache.create ~max_bytes:1 () in
  let fill name =
    let vk = bytecode name in
    ignore
      (Cache.find_or_compile cache ~target:sse ~profile:Profile.mono vk)
  in
  fill "saxpy_fp";
  check_int "oversized single entry stays" 1 (Cache.entry_count cache);
  check_int "no eviction yet" 0 (Cache.evictions cache);
  fill "dscal_fp";
  check_int "one entry after second fill" 1 (Cache.entry_count cache);
  check_int "one eviction" 1 (Cache.evictions cache);
  check_bool "bytes charged for exactly one entry" true
    (Cache.byte_count cache > 0)

let cache_reinsert_case () =
  (* Re-inserting an existing key replaces the entry without
     double-charging bytes or inflating the entry count. *)
  let cache = Cache.create () in
  let vk = bytecode "saxpy_fp" in
  let key = cache_key vk sse Profile.mono in
  let compiled = Compile.compile ~target:sse ~profile:Profile.mono vk in
  Cache.insert cache key vk Profile.mono compiled;
  let bytes_once = Cache.byte_count cache in
  Cache.insert cache key vk Profile.mono compiled;
  check_int "entry count stays 1" 1 (Cache.entry_count cache);
  check_int "bytes not double-charged" bytes_once (Cache.byte_count cache);
  check_int "both inserts counted as fills" 2 (Cache.fills cache);
  check_int "no evictions" 0 (Cache.evictions cache);
  check_bool "hit after re-insert" true (Cache.find cache key <> None)

(* --- guarded tiered execution ------------------------------------------ *)

let guarded ?oracle ?faults ?(retry_budget = 3) () =
  let st = Stats.create () in
  let cache = Cache.create ~stats:st () in
  let guard =
    { Tiered.g_oracle = oracle; g_faults = faults; g_retry_budget = retry_budget }
  in
  let tiered = Tiered.create ~guard ~cache ~hotness_threshold:0 () in
  tiered, st

let oracle_healthy_case () =
  (* With the oracle checking every run of a healthy body: checks happen,
     nothing mismatches, nothing is quarantined, output is bit-right. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let tiered, st = guarded ~oracle:Tiered.oracle_always () in
  let args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args args in
  let r =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk ~args
  in
  check_bool "ran on the JIT tier" true (r.Tiered.r_tier = Tiered.Jit);
  check_int "one oracle check" 1 (Stats.counter st "oracle.checks");
  check_int "no mismatch" 0 (Stats.counter st "oracle.mismatches");
  check_int "no quarantine" 0 (Stats.counter st "guard.quarantines");
  ignore (Veval.run vk ~mode:(veval_mode sse) ~args:ref_args);
  check_args_bit_equal "healthy oracle output" ref_args args

let corruption_quarantine_case () =
  (* Corrupt every cache-delivered body: the first JIT run must be caught
     by the oracle, the body quarantined, the kernel demoted, and the
     caller must still receive the interpreter's (correct) answer. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let faults =
    Faults.make { Faults.default_spec with f_corrupt_rate = 1.0 }
  in
  let tiered, st = guarded ~oracle:Tiered.oracle_always ~faults () in
  let args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args args in
  let r =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk ~args
  in
  check_bool "answer came from the interpreter" true
    (r.Tiered.r_tier = Tiered.Interpreter);
  check_int "mismatch caught" 1 (Stats.counter st "oracle.mismatches");
  check_int "quarantined" 1 (Stats.counter st "guard.quarantines");
  check_int "demoted" 1 (Stats.counter st "tier.demotions");
  check_int "cache emptied by quarantine" 0
    (Cache.entry_count (Tiered.cache tiered));
  ignore (Veval.run vk ~mode:(veval_mode sse) ~args:ref_args);
  check_args_bit_equal "quarantine restored correct output" ref_args args;
  (* Subsequent invocations stay pinned to the interpreter. *)
  let r2 =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk
      ~args:(entry.Suite.args ~scale:1)
  in
  check_bool "stays interpreted after quarantine" true
    (r2.Tiered.r_tier = Tiered.Interpreter);
  check_int "no re-promotion" 1 (Stats.counter st "tier.promotions");
  let s = List.hd (Tiered.states tiered) in
  check_bool "kstate flagged quarantined" true s.Tiered.ks_quarantined

let retry_recovers_case () =
  (* Injected transient compile faults: with max_transient = 2 the first
     three attempts fail, the fourth succeeds; the retry loop must absorb
     all of it and still produce correct JIT output. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let faults =
    Faults.make
      { Faults.default_spec with f_compile_fault_rate = 1.0; f_max_transient = 2 }
  in
  let tiered, st = guarded ~faults ~retry_budget:3 () in
  let args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args args in
  let r =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk ~args
  in
  check_bool "recovered to the JIT tier" true (r.Tiered.r_tier = Tiered.Jit);
  check_int "three injected faults" 3 (Stats.counter st "faults.injected_compile");
  check_int "three retries" 3 (Stats.counter st "guard.retries");
  check_int "no hard error" 0 (Stats.counter st "guard.compile_errors");
  check_bool "backoff charged" true
    (r.Tiered.r_compile_us > Faults.backoff_us ~attempt:1);
  ignore (Veval.run vk ~mode:(veval_mode sse) ~args:ref_args);
  check_args_bit_equal "retry output" ref_args args

let retry_exhausted_case () =
  (* Retry budget smaller than the fault's persistence: the compile is a
     hard error, the kernel de-optimizes to the interpreter, and the
     caller still gets the right answer. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode "saxpy_fp" in
  let faults =
    Faults.make
      { Faults.default_spec with f_compile_fault_rate = 1.0; f_max_transient = 99 }
  in
  let tiered, st = guarded ~faults ~retry_budget:2 () in
  let args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args args in
  let r =
    Tiered.invoke tiered ~target:sse ~profile:Profile.mono vk ~args
  in
  check_bool "fell back to the interpreter" true
    (r.Tiered.r_tier = Tiered.Interpreter);
  check_int "hard compile error" 1 (Stats.counter st "guard.compile_errors");
  check_int "retries bounded by budget" 2 (Stats.counter st "guard.retries");
  ignore (Veval.run vk ~mode:(veval_mode sse) ~args:ref_args);
  check_args_bit_equal "exhausted-retry output" ref_args args

(* --- chaos replay end-to-end ------------------------------------------- *)

let chaos_config ~seed =
  let faults =
    Faults.make
      {
        Faults.default_spec with
        Faults.f_seed = seed;
        f_corrupt_rate = 0.05;
        f_compile_fault_rate = 0.25;
        f_max_transient = 2;
      }
  in
  {
    (Service.default_config ~targets:[ sse ]) with
    Service.cfg_guard =
      {
        Tiered.g_oracle = Some Tiered.oracle_always;
        g_faults = Some faults;
        g_retry_budget = 3;
      };
    cfg_drop_simd = Some (200, Vapor_targets.Scalar_target.find "scalar");
  }

let chaos_replay_case () =
  (* A full chaos replay: every fault absorbed (mismatches always
     quarantined), the whole trace finishes, and the run is deterministic
     per seed. *)
  let trace = Trace.standard ~seed:7 ~length:300 ~n_targets:1 () in
  let rp = Service.replay (chaos_config ~seed:7) trace in
  check_int "whole trace replayed" 300 rp.Service.rp_invocations;
  check_bool "guarded activity reported" true (Service.guarded_activity rp);
  check_bool "every mismatch quarantined" true
    (rp.Service.rp_oracle_mismatches <= rp.Service.rp_quarantines);
  check_bool "oracle actually ran" true (rp.Service.rp_oracle_checks > 0);
  let rp2 = Service.replay (chaos_config ~seed:7) trace in
  check_int "deterministic quarantines" rp.Service.rp_quarantines
    rp2.Service.rp_quarantines;
  check_int "deterministic retries" rp.Service.rp_retries
    rp2.Service.rp_retries;
  check_int "deterministic oracle checks" rp.Service.rp_oracle_checks
    rp2.Service.rp_oracle_checks

let unguarded_counters_silent_case () =
  (* An unguarded replay must report zero guarded-execution activity —
     the gate that keeps healthy-path reports byte-identical. *)
  let trace = Trace.standard ~seed:42 ~length:100 ~n_targets:1 () in
  let rp =
    Service.replay (Service.default_config ~targets:[ sse ]) trace
  in
  check_bool "no guarded activity when unguarded" false
    (Service.guarded_activity rp)

let () =
  Alcotest.run "guarded"
    [
      ( "oracle-net",
        [
          Alcotest.test_case "suite x targets bit-equal" `Quick
            differential_sweep_case;
        ] );
      ( "error-channel",
        [
          Alcotest.test_case "clean compile" `Quick compile_checked_clean_case;
          Alcotest.test_case "forced scalar body runs" `Quick
            forced_scalar_runs_case;
          Alcotest.test_case "exec fault is typed and harmless" `Quick
            run_checked_fault_case;
        ] );
      ( "cache-edges",
        [
          Alcotest.test_case "entry budget zero" `Quick
            cache_entry_budget_zero_case;
          Alcotest.test_case "byte budget below one body" `Quick
            cache_byte_budget_tiny_case;
          Alcotest.test_case "re-insert existing key" `Quick
            cache_reinsert_case;
        ] );
      ( "guarded-tiered",
        [
          Alcotest.test_case "oracle passes healthy body" `Quick
            oracle_healthy_case;
          Alcotest.test_case "corruption quarantined" `Quick
            corruption_quarantine_case;
          Alcotest.test_case "transient faults retried" `Quick
            retry_recovers_case;
          Alcotest.test_case "retry budget exhausted" `Quick
            retry_exhausted_case;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "chaos replay absorbs faults" `Quick
            chaos_replay_case;
          Alcotest.test_case "unguarded replay is silent" `Quick
            unguarded_counters_silent_case;
        ] );
    ]
