(* Tests for the resilient serving layer: ingress backpressure (block vs
   shed), deadline semantics (buffers untouched), the per-digest circuit
   breaker (unit cycle and engine-driven degrade/recover), graceful-drain
   conservation (no event ever lost), priority-ordered overload shedding,
   byte-identity between serve-bench and a plain sharded replay, and
   determinism across --domains and across repeated chaos runs. *)

module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service
module Stats = Vapor_runtime.Stats
module Tiered = Vapor_runtime.Tiered
module Faults = Vapor_runtime.Faults
module D = Vapor_runtime.Digest
module Ingress = Vapor_serve.Ingress
module Breaker = Vapor_serve.Breaker
module Workload = Vapor_serve.Workload
module Serve = Vapor_serve.Serve
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows

let sse = Vapor_targets.Sse.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let base_cfg () = Service.default_config ~targets:[ sse ]

let serve_cfg ?(domains = 1) ?(lanes = 2) ?(budget = 8) ?backlog ?faults
    ?(threshold = 3) ?(cooldown = 1_000_000) ?(max_batch = 1)
    ?(batch_window = 1024) ?(checkpoint_every = 0) ?journal_dir
    ?(restart_limit = 3) ?(lane_stall_limit = 8192) ?(crash_at = [])
    ?(wedge_at = []) cfg =
  {
    Serve.sv_service = cfg;
    sv_domains = domains;
    sv_lanes = lanes;
    sv_budget = budget;
    sv_backlog = backlog;
    sv_faults = faults;
    sv_breaker_threshold = threshold;
    sv_breaker_cooldown = cooldown;
    sv_max_batch = max_batch;
    sv_batch_window = batch_window;
    sv_checkpoint_every = checkpoint_every;
    sv_journal_dir = journal_dir;
    sv_restart_limit = restart_limit;
    sv_lane_stall_limit = lane_stall_limit;
    sv_crash_at = crash_at;
    sv_wedge_at = wedge_at;
  }

(* Hand-built workloads for the targeted scenarios. *)
let ev i kernel = { Trace.ev_index = i; ev_kernel = kernel; ev_target = 0; ev_scale = 2 }

let manual_workload ~streams ~events =
  let seqs = Array.make (Array.length streams) 0 in
  let sorted =
    List.stable_sort
      (fun (at1, seq1, _, _) (at2, seq2, _, _) ->
        match compare at1 at2 with 0 -> compare seq1 seq2 | c -> c)
      events
  in
  let arrivals =
    List.map
      (fun (at, seq, sid, kernel) ->
        let k = seqs.(sid) in
        seqs.(sid) <- k + 1;
        {
          Workload.ar_at = at;
          ar_seq = seq;
          ar_stream = sid;
          ar_stream_seq = k;
          ar_event = ev seq kernel;
        })
      sorted
  in
  let kernels =
    List.sort_uniq compare (List.map (fun (_, _, _, k) -> k) events)
  in
  {
    Workload.wl_desc = Printf.sprintf "manual(%d events)" (List.length events);
    wl_kernels = kernels;
    wl_streams = streams;
    wl_arrivals = Array.of_list arrivals;
  }

(* --- ingress: block vs shed --------------------------------------------- *)

let ingress_policy_case () =
  let q = Ingress.create ~cap:2 ~policy:Ingress.Block in
  check_bool "accepts under cap" true (Ingress.offer q 1 = Ingress.Accepted);
  check_bool "accepts at cap" true (Ingress.offer q 2 = Ingress.Accepted);
  check_bool "blocks when full" true (Ingress.offer q 3 = Ingress.Would_block);
  check_int "blocked counted" 1 (Ingress.blocked_count q);
  check_int "nothing shed under block" 0 (Ingress.shed_count q);
  check_bool "FIFO pop" true (Ingress.pop q = Some 1);
  check_bool "room again after pop" true (Ingress.offer q 3 = Ingress.Accepted);
  check_int "accepted counted" 3 (Ingress.accepted_count q);
  let s = Ingress.create ~cap:1 ~policy:Ingress.Shed in
  check_bool "shed accepts under cap" true (Ingress.offer s 10 = Ingress.Accepted);
  check_bool "shed drops when full" true (Ingress.offer s 11 = Ingress.Dropped);
  check_int "shed counted" 1 (Ingress.shed_count s);
  (* Overload trim is accounted by the caller, not the queue. *)
  check_bool "drop_oldest returns the head" true (Ingress.drop_oldest s = Some 10);
  check_int "drop_oldest not counted as ingress shed" 1 (Ingress.shed_count s);
  check_bool "empty after trim" true (Ingress.is_empty s)

(* --- breaker: the full life cycle, unit-level --------------------------- *)

let breaker_digest () =
  D.of_vkernel (Flows.vectorized_bytecode (Suite.find "saxpy_fp")).Driver.vkernel

let breaker_cycle_case () =
  let d = breaker_digest () in
  let b = Breaker.create ~threshold:2 ~cooldown:100 () in
  check_bool "starts closed" true (Breaker.state b d = Breaker.Closed);
  check_bool "closed serves normal" true (Breaker.mode b d ~now:0 = Breaker.Normal);
  Breaker.record b d ~now:0 ~ok:false;
  check_bool "one failure stays closed" true (Breaker.state b d = Breaker.Closed);
  Breaker.record b d ~now:1 ~ok:true;
  Breaker.record b d ~now:2 ~ok:false;
  check_bool "success resets the streak" true (Breaker.state b d = Breaker.Closed);
  Breaker.record b d ~now:3 ~ok:false;
  check_bool "threshold consecutive failures open" true
    (Breaker.state b d = Breaker.Open);
  check_int "open transition counted" 1 (Breaker.opens b);
  check_bool "open serves interpreter-only" true
    (Breaker.mode b d ~now:50 = Breaker.Interp_only);
  check_bool "cooldown elapsed: half-open probe" true
    (Breaker.mode b d ~now:103 = Breaker.Probe);
  check_int "half-open counted" 1 (Breaker.half_opens b);
  (* A failed probe re-opens with a doubled cooldown. *)
  Breaker.record b d ~now:103 ~ok:false;
  check_bool "failed probe re-opens" true (Breaker.state b d = Breaker.Open);
  check_bool "doubled cooldown still open" true
    (Breaker.mode b d ~now:250 = Breaker.Interp_only);
  check_bool "doubled cooldown elapses" true
    (Breaker.mode b d ~now:310 = Breaker.Probe);
  Breaker.record b d ~now:310 ~ok:true;
  check_bool "clean probe closes" true (Breaker.state b d = Breaker.Closed);
  check_int "close counted" 1 (Breaker.closes b);
  check_int "nothing open at the end" 0 (Breaker.open_count b)

(* --- serve-bench vs serve-replay: byte-identity -------------------------- *)

let bench_identity_case () =
  let trace = Trace.standard ~length:240 ~n_targets:1 () in
  let cfg = base_cfg () in
  let wl = Workload.of_trace ~streams:4 trace in
  let rep = Serve.run (serve_cfg ~domains:2 cfg) wl in
  check_int "drain answers everything" (Workload.total wl) rep.Serve.sr_answered;
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  check_int "no breaker activity on the healthy path" 0
    rep.Serve.sr_breaker_opens;
  let embedded = Service.report_to_string rep.Serve.sr_service in
  let sharded =
    Service.report_to_string (Service.replay_sharded ~domains:2 cfg trace)
  in
  check_string "serve == sharded replay, byte-identical" sharded embedded;
  let plain = Service.report_to_string (Service.replay cfg trace) in
  check_string "serve == plain replay, byte-identical" plain embedded

(* --- determinism: across domains, and across repeated runs --------------- *)

let domains_determinism_case () =
  let trace = Trace.standard ~length:200 ~n_targets:1 () in
  let run domains =
    let rep =
      Serve.run (serve_cfg ~domains (base_cfg ()))
        (Workload.of_trace ~streams:4 trace)
    in
    ( Service.report_to_string rep.Serve.sr_service,
      [
        rep.Serve.sr_answered;
        rep.Serve.sr_virtual_cycles;
        rep.Serve.sr_peak_queue;
        rep.Serve.sr_peak_in_flight;
        rep.Serve.sr_blocked;
        rep.Serve.sr_lost;
      ] )
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check_bool "domains=2 identical to domains=1" true (r1 = r2);
  check_bool "domains=4 identical to domains=1" true (r1 = r4)

let chaos_repeat_determinism_case () =
  let trace = Trace.standard ~length:200 ~n_targets:1 () in
  let run () =
    let faults = Faults.make (Faults.serve_chaos_spec ~seed:42) in
    let cfg =
      {
        (base_cfg ()) with
        Service.cfg_guard =
          {
            Tiered.g_oracle = Some Tiered.oracle_always;
            g_faults = Some faults;
            g_retry_budget = 3;
          };
      }
    in
    Serve.report_to_string
      (Serve.run (serve_cfg ~faults cfg)
         (Workload.of_trace ~streams:4 trace))
  in
  check_string "same seed, same chaos, byte-identical report" (run ()) (run ())

(* --- backpressure -------------------------------------------------------- *)

let block_backpressure_case () =
  let trace = Trace.standard ~length:60 ~n_targets:1 () in
  let wl = Workload.of_trace ~streams:2 ~queue_cap:2 ~policy:Ingress.Block trace in
  let rep = Serve.run (serve_cfg (base_cfg ())) wl in
  check_bool "full queues pushed back on the producer" true
    (rep.Serve.sr_blocked > 0);
  check_int "every blocked event eventually served" 60 rep.Serve.sr_answered;
  check_int "block policy sheds nothing" 0 rep.Serve.sr_shed_ingress;
  check_int "nothing lost" 0 rep.Serve.sr_lost

let shed_backpressure_case () =
  let trace = Trace.standard ~length:60 ~n_targets:1 () in
  let wl = Workload.of_trace ~streams:2 ~queue_cap:2 ~policy:Ingress.Shed trace in
  let rep = Serve.run (serve_cfg (base_cfg ())) wl in
  check_bool "overflow shed" true (rep.Serve.sr_shed_ingress > 0);
  check_int "shed + answered conserves the total" 60
    (rep.Serve.sr_answered + rep.Serve.sr_shed_ingress);
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  (* Shed is accounted on the serve side only: the replay report counts
     exactly the answered invocations. *)
  check_int "replay saw only the answered events" rep.Serve.sr_answered
    rep.Serve.sr_service.Service.rp_invocations

(* --- deadlines: timed-out events never execute --------------------------- *)

let deadline_case () =
  let trace = Trace.standard ~length:40 ~n_targets:1 () in
  let wl =
    Workload.of_trace ~streams:2 ~queue_cap:64 ~deadline:1 ~interval:0 trace
  in
  let rep = Serve.run (serve_cfg ~lanes:2 (base_cfg ())) wl in
  (* Flooded at t=0 with a 1-cycle budget: only the events dispatched at
     t=0 (one per lane) can make it; everything else times out. *)
  check_int "one event per lane beat the deadline" 2 rep.Serve.sr_answered;
  check_int "the rest timed out" 38 rep.Serve.sr_deadline_misses;
  (* Buffers untouched: a timed-out event never reaches the runtime, so
     invocations == answered, not total. *)
  check_int "timeouts never invoked the runtime" 2
    rep.Serve.sr_service.Service.rp_invocations;
  check_int "nothing lost" 0 rep.Serve.sr_lost

let stream_deadline_case () =
  let trace = Trace.standard ~length:30 ~n_targets:1 () in
  let wl =
    Workload.of_trace ~streams:2 ~queue_cap:64 ~stream_deadline:1 ~interval:0
      trace
  in
  let rep = Serve.run (serve_cfg ~lanes:1 ~budget:1 (base_cfg ())) wl in
  check_int "only the t=0 dispatch beat the stream cutoff" 1
    rep.Serve.sr_answered;
  check_int "the rest of both streams timed out" 29
    rep.Serve.sr_stream_deadline_misses;
  check_int "nothing lost" 0 rep.Serve.sr_lost

(* --- breaker in the engine: degrade to interp-only, probe, recover ------- *)

let breaker_engine_case () =
  let streams =
    [|
      Workload.stream ~id:0 ~queue_cap:8 ~deadline:1 ();
      Workload.stream ~id:1 ~queue_cap:8 ();
    |]
  in
  (* s0 floods two events at t=0 through one lane: the first executes,
     the second busts its 1-cycle budget -> timeout -> breaker opens
     (threshold 1).  s1's later events then walk the recovery: one
     served interpreter-only inside the cooldown, one probe after it,
     then normal serving. *)
  let events =
    [
      0, 0, 0, "saxpy_fp";
      0, 1, 0, "saxpy_fp";
      40_000, 2, 1, "saxpy_fp";
      200_000, 3, 1, "saxpy_fp";
      300_000, 4, 1, "saxpy_fp";
    ]
  in
  let wl = manual_workload ~streams ~events in
  let rep =
    Serve.run
      (serve_cfg ~lanes:1 ~budget:1 ~threshold:1 ~cooldown:50_000
         (base_cfg ()))
      wl
  in
  check_int "timeout opened the breaker" 1 rep.Serve.sr_breaker_opens;
  check_int "one event served degraded during the cooldown" 1
    rep.Serve.sr_interp_only;
  check_int "one half-open probe" 1 rep.Serve.sr_breaker_half_opens;
  check_int "probe ran a forced oracle check" 1 rep.Serve.sr_probes;
  check_int "clean probe closed the breaker" 1 rep.Serve.sr_breaker_closes;
  check_int "nothing open at drain" 0 rep.Serve.sr_breaker_open_at_drain;
  check_int "four events answered" 4 rep.Serve.sr_answered;
  check_int "one deadline miss" 1 rep.Serve.sr_deadline_misses;
  check_int "nothing lost" 0 rep.Serve.sr_lost

(* --- overload shedding respects priority --------------------------------- *)

let priority_shed_case () =
  let streams =
    [|
      Workload.stream ~id:0 ~priority:1 ~policy:Ingress.Block ~queue_cap:64 ();
      Workload.stream ~id:1 ~priority:0 ~policy:Ingress.Shed ~queue_cap:64 ();
    |]
  in
  (* 20 saxpy events on the high-priority stream, 20 sfir events on the
     low-priority shed-policy stream, all flooded at t=0 with a backlog
     watermark of 10: the trim must fall entirely on the sfir stream. *)
  let events =
    List.init 20 (fun i -> 0, i, 0, "saxpy_fp")
    @ List.init 20 (fun i -> 0, 20 + i, 1, "sfir_fp")
  in
  let wl = manual_workload ~streams ~events in
  let rep =
    Serve.run
      (serve_cfg ~lanes:1 ~budget:1 ~backlog:10 (base_cfg ()))
      wl
  in
  check_int "low-priority stream trimmed whole" 20 rep.Serve.sr_shed_overload;
  check_int "high-priority stream fully served" 20 rep.Serve.sr_answered;
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  (* The replay rows prove who was served: every saxpy invocation, no
     sfir ones. *)
  let invocations kernel =
    List.fold_left
      (fun acc (r : Service.kernel_row) ->
        if r.Service.kr_kernel = kernel then acc + r.Service.kr_invocations
        else acc)
      0 rep.Serve.sr_service.Service.rp_rows
  in
  check_int "all saxpy served" 20 (invocations "saxpy_fp");
  check_int "no sfir served" 0 (invocations "sfir_fp")

(* --- chaos: conservation under serving-shaped faults ---------------------- *)

let chaos_conservation_case () =
  let trace = Trace.standard ~seed:42 ~length:300 ~n_targets:1 () in
  let faults = Faults.make (Faults.serve_chaos_spec ~seed:42) in
  let cfg =
    {
      (base_cfg ()) with
      Service.cfg_guard =
        {
          Tiered.g_oracle = Some Tiered.oracle_always;
          g_faults = Some faults;
          g_retry_budget = 3;
        };
    }
  in
  let wl = Workload.of_trace ~streams:4 trace in
  let rep = Serve.run (serve_cfg ~faults cfg) wl in
  check_int "no event escapes the accounting" 0 rep.Serve.sr_lost;
  check_bool "disconnects fired" true (rep.Serve.sr_disconnected > 0);
  check_bool "the faults were actually drawn" true (Faults.stall_draws faults > 0);
  check_bool "every mismatch was quarantined" true
    (rep.Serve.sr_service.Service.rp_oracle_mismatches
    <= rep.Serve.sr_service.Service.rp_quarantines);
  check_int "conservation equation balances"
    (Workload.total wl)
    (rep.Serve.sr_answered + rep.Serve.sr_shed_ingress
   + rep.Serve.sr_shed_overload + rep.Serve.sr_deadline_misses
   + rep.Serve.sr_stream_deadline_misses + rep.Serve.sr_injected_exhaustions
   + rep.Serve.sr_disconnected)

(* --- batched dispatch ----------------------------------------------------- *)

(* Batching is semantics-free: for any batch config and any domain count
   the embedded replay report is byte-identical to a plain replay of the
   same trace (same invocations, cycles, promotions, cache hits). *)
let batch_identity_case () =
  let trace = Trace.standard ~length:240 ~n_targets:1 () in
  let cfg = base_cfg () in
  let plain = Service.report_to_string (Service.replay cfg trace) in
  List.iter
    (fun domains ->
      List.iter
        (fun (max_batch, batch_window) ->
          let rep =
            Serve.run
              (serve_cfg ~domains ~budget:16 ~max_batch ~batch_window cfg)
              (Workload.of_trace ~streams:4 trace)
          in
          let label =
            Printf.sprintf "domains=%d max_batch=%d window=%d" domains
              max_batch batch_window
          in
          check_string (label ^ ": embedded == plain replay") plain
            (Service.report_to_string rep.Serve.sr_service);
          check_int (label ^ ": nothing lost") 0 rep.Serve.sr_lost;
          check_int
            (label ^ ": everything answered")
            240 rep.Serve.sr_answered)
        [ (1, 1024); (4, 512); (32, 32_768) ])
    [ 1; 2; 4 ]

(* Formation follows the traffic shape: a single-kernel flood fills one
   batch to the cap, a two-kernel mix splits into per-digest batches that
   close at the window instead. *)
let batch_formation_case () =
  let streams =
    [|
      Workload.stream ~id:0 ~queue_cap:8 ();
      Workload.stream ~id:1 ~queue_cap:8 ();
    |]
  in
  let form ~kernel1 =
    let events =
      List.init 8 (fun i -> 0, i, 0, "saxpy_fp")
      @ List.init 8 (fun i -> 0, 8 + i, 1, kernel1)
    in
    Serve.run
      (serve_cfg ~lanes:1 ~budget:16 ~max_batch:16 ~batch_window:100_000
         (base_cfg ()))
      (manual_workload ~streams ~events)
  in
  let skewed = form ~kernel1:"saxpy_fp" in
  (* 16 same-digest events flooded at t=0 fill the cap: one batch. *)
  check_int "skewed: one full batch" 1 skewed.Serve.sr_batches;
  check_int "skewed: all 16 in it" 16 skewed.Serve.sr_batched_events;
  check_int "skewed: all answered" 16 skewed.Serve.sr_answered;
  let uniform = form ~kernel1:"sfir_fp" in
  (* Two digests, 8 events each: neither reaches the cap, both close at
     the window — twice the batches at half the size. *)
  check_int "uniform: one batch per digest" 2 uniform.Serve.sr_batches;
  check_int "uniform: all 16 batched" 16 uniform.Serve.sr_batched_events;
  check_int "uniform: all answered" 16 uniform.Serve.sr_answered

(* A member deadline at risk closes an open batch early: with the window
   parked far in the future, the only way these events get served before
   their budget burns is the risk-driven close. *)
let batch_deadline_close_case () =
  let streams = [| Workload.stream ~id:0 ~queue_cap:4 ~deadline:10_000 () |] in
  let events = [ 0, 0, 0, "saxpy_fp"; 0, 1, 0, "saxpy_fp" ] in
  let rep =
    Serve.run
      (serve_cfg ~lanes:1 ~budget:4 ~max_batch:8 ~batch_window:10_000_000
         (base_cfg ()))
      (manual_workload ~streams ~events)
  in
  check_int "batch closed at the deadline, not the window" 1
    rep.Serve.sr_batches;
  check_int "both members rode it" 2 rep.Serve.sr_batched_events;
  check_int "both answered in time" 2 rep.Serve.sr_answered;
  check_int "no deadline misses" 0 rep.Serve.sr_deadline_misses;
  check_int "nothing lost" 0 rep.Serve.sr_lost

(* A non-closed breaker bypasses formation: while the digest is open or
   half-open every event dispatches as a singleton, so each probe's
   verdict lands before the next same-digest serve.  Once the probe
   closes the breaker, formation resumes. *)
let batch_breaker_bypass_case () =
  let streams =
    [|
      Workload.stream ~id:0 ~queue_cap:4 ~stream_deadline:1 ();
      Workload.stream ~id:1 ~queue_cap:8 ();
    |]
  in
  (* s0's lone event arrives past its stream cutoff: timeout -> breaker
     opens (threshold 1).  s1 then floods three events while the breaker
     is open: all three must bypass formation (singletons; the first is
     the probe that closes the breaker).  The final pair arrives with
     the breaker closed again and co-batches. *)
  let events =
    [
      2, 0, 0, "saxpy_fp";
      100_000, 1, 1, "saxpy_fp";
      100_000, 2, 1, "saxpy_fp";
      100_000, 3, 1, "saxpy_fp";
      300_000, 4, 1, "saxpy_fp";
      300_000, 5, 1, "saxpy_fp";
    ]
  in
  let rep =
    Serve.run
      (serve_cfg ~lanes:1 ~budget:8 ~threshold:1 ~cooldown:50_000
         ~max_batch:8 ~batch_window:1_000 (base_cfg ()))
      (manual_workload ~streams ~events)
  in
  check_int "stream-deadline timeout opened the breaker" 1
    rep.Serve.sr_breaker_opens;
  check_int "one half-open probe" 1 rep.Serve.sr_breaker_half_opens;
  check_int "clean probe closed the breaker" 1 rep.Serve.sr_breaker_closes;
  (* 3 bypass singletons + 1 closed-breaker pair = 4 batches / 5 events
     (the timed-out event's batch had no survivors). *)
  check_int "bypass kept open-breaker serves singleton" 4
    rep.Serve.sr_batches;
  check_int "five events went through batches" 5 rep.Serve.sr_batched_events;
  check_int "five answered" 5 rep.Serve.sr_answered;
  check_int "nothing lost" 0 rep.Serve.sr_lost

(* Chaos with batching on: conservation still holds exactly, quarantines
   still cover mismatches, and the run is repeat-deterministic. *)
let batch_chaos_case () =
  let trace = Trace.standard ~seed:42 ~length:300 ~n_targets:1 () in
  let run () =
    let faults = Faults.make (Faults.serve_chaos_spec ~seed:42) in
    let cfg =
      {
        (base_cfg ()) with
        Service.cfg_guard =
          {
            Tiered.g_oracle = Some Tiered.oracle_always;
            g_faults = Some faults;
            g_retry_budget = 3;
          };
      }
    in
    Serve.run
      (serve_cfg ~faults ~budget:16 ~max_batch:8 ~batch_window:4096 cfg)
      (Workload.of_trace ~streams:4 trace)
  in
  let rep = run () in
  check_int "no event escapes the accounting" 0 rep.Serve.sr_lost;
  check_bool "every mismatch was quarantined" true
    (rep.Serve.sr_service.Service.rp_oracle_mismatches
    <= rep.Serve.sr_service.Service.rp_quarantines);
  check_int "conservation equation balances"
    (Workload.total (Workload.of_trace ~streams:4 trace))
    (rep.Serve.sr_answered + rep.Serve.sr_shed_ingress
   + rep.Serve.sr_shed_overload + rep.Serve.sr_deadline_misses
   + rep.Serve.sr_stream_deadline_misses + rep.Serve.sr_injected_exhaustions
   + rep.Serve.sr_disconnected);
  check_string "chaos with batching is repeat-deterministic"
    (Serve.report_to_string rep)
    (Serve.report_to_string (run ()))

(* --- serve gauges exported, reports unperturbed --------------------------- *)

let gauges_case () =
  let trace = Trace.standard ~length:80 ~n_targets:1 () in
  let stats = Stats.create () in
  let rep =
    Serve.run ~stats (serve_cfg (base_cfg ())) (Workload.of_trace ~streams:4 trace)
  in
  let gauge name = Option.value ~default:nan (Stats.gauge stats name) in
  Alcotest.(check (float 0.0))
    "serve.answered gauge" (float_of_int rep.Serve.sr_answered)
    (gauge "serve.answered");
  Alcotest.(check (float 0.0)) "serve.lost gauge" 0.0 (gauge "serve.lost");
  Alcotest.(check (float 0.0))
    "serve.virtual_cycles gauge"
    (float_of_int rep.Serve.sr_virtual_cycles)
    (gauge "serve.virtual_cycles");
  (* Per-stream labeled series sum to their unlabeled totals. *)
  let labeled_sum name =
    List.fold_left
      (fun acc ((n, k, _), v) ->
        if n = name && k = "stream" then acc +. v else acc)
      0.0 (Stats.labeled_series stats)
  in
  Alcotest.(check (float 0.0))
    "labeled serve.answered sums to the total"
    (gauge "serve.answered") (labeled_sum "serve.answered");
  Alcotest.(check (float 0.0))
    "labeled serve.timeouts sums to the total" (gauge "serve.timeouts")
    (labeled_sum "serve.timeouts");
  Alcotest.(check (float 0.0))
    "labeled serve.shed_ingress sums to the total"
    (gauge "serve.shed_ingress")
    (labeled_sum "serve.shed_ingress");
  check_bool "labeled series reach the Prometheus export" true
    (let prom = Stats.to_prometheus stats in
     let needle = "vapor_serve_answered{stream=\"0\"}" in
     let nl = String.length needle in
     let rec contains i =
       i + nl <= String.length prom
       && (String.sub prom i nl = needle || contains (i + 1))
     in
     contains 0);
  (* Gauges never leak into the table or the report text. *)
  check_bool "gauges absent from the counter table" false
    (let table = Stats.to_table stats in
     let rec contains i =
       i + 6 <= String.length table
       && (String.sub table i 6 = "serve." || contains (i + 1))
     in
     contains 0);
  if String.length (Serve.report_to_string rep) = 0 then fail "empty report"

let () =
  Alcotest.run "serve"
    [
      ( "ingress",
        [ Alcotest.test_case "block vs shed" `Quick ingress_policy_case ] );
      ( "breaker",
        [
          Alcotest.test_case "unit life cycle" `Quick breaker_cycle_case;
          Alcotest.test_case "engine degrade and recover" `Quick
            breaker_engine_case;
        ] );
      ( "identity",
        [
          Alcotest.test_case "serve-bench == serve-replay" `Quick
            bench_identity_case;
          Alcotest.test_case "identical across domains" `Quick
            domains_determinism_case;
          Alcotest.test_case "chaos repeat determinism" `Quick
            chaos_repeat_determinism_case;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "block stalls and serves all" `Quick
            block_backpressure_case;
          Alcotest.test_case "shed drops and accounts" `Quick
            shed_backpressure_case;
          Alcotest.test_case "overload trim respects priority" `Quick
            priority_shed_case;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "event deadline, buffers untouched" `Quick
            deadline_case;
          Alcotest.test_case "stream deadline cutoff" `Quick
            stream_deadline_case;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "conservation under serving faults" `Quick
            chaos_conservation_case;
        ] );
      ( "batching",
        [
          Alcotest.test_case "identity across domains and configs" `Quick
            batch_identity_case;
          Alcotest.test_case "skewed vs uniform formation" `Quick
            batch_formation_case;
          Alcotest.test_case "deadline-driven early close" `Quick
            batch_deadline_close_case;
          Alcotest.test_case "breaker-open bypass" `Quick
            batch_breaker_bypass_case;
          Alcotest.test_case "chaos conservation with batching" `Quick
            batch_chaos_case;
        ] );
      ( "observability",
        [ Alcotest.test_case "serve gauges exported" `Quick gauges_case ] );
    ]
