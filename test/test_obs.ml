(* Tests for the observability layer: metrics-registry pooling laws
   (QCheck), the disabled tracer's zero-overhead contract, deterministic
   trace identity across domain counts, export formats, and JIT cost
   report sanity. *)

module Stats = Vapor_runtime.Stats
module Tracer = Vapor_obs.Tracer
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service
module Tiered = Vapor_runtime.Tiered
module Jit_report = Vapor_harness.Jit_report
module Profile = Vapor_jit.Profile

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- registry scripts: a generable recipe for building a registry ------- *)

(* A registry is reconstructed from a script of operations drawn from a
   small name pool.  Values are integer-valued floats, so counter sums,
   histogram sums, and additive gauges pool exactly and the JSON export
   is a faithful equality witness. *)
type op =
  | Incr of string * int
  | Observe of string * int
  | Add_gauge of string * int

let apply st = function
  | Incr (n, by) -> Stats.incr ~by st n
  | Observe (n, v) -> Stats.observe st n (float_of_int v)
  | Add_gauge (n, v) -> Stats.add_gauge st n (float_of_int v)

let build ops =
  let st = Stats.create () in
  List.iter (apply st) ops;
  st

let op_gen =
  let open QCheck.Gen in
  let name pool = map (List.nth pool) (int_bound (List.length pool - 1)) in
  oneof
    [
      map2 (fun n by -> Incr (n, by)) (name [ "c0"; "c1"; "c2" ]) (int_bound 50);
      map2
        (fun n v -> Observe (n, v))
        (name [ "h0"; "h1" ])
        (int_range (-100) 100);
      map2
        (fun n v -> Add_gauge (n, v))
        (name [ "g0"; "g1" ])
        (int_range (-20) 20);
    ]

let script_arb =
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops) ^ " ops")
    QCheck.Gen.(list_size (int_bound 30) op_gen)

(* Pool [srcs] left-to-right into a fresh registry. *)
let pool srcs =
  let dst = Stats.create () in
  List.iter (fun src -> Stats.merge_into ~dst src) srcs;
  dst

let json_equal a b = String.equal (Stats.to_json a) (Stats.to_json b)

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge_into associative"
    QCheck.(triple script_arb script_arb script_arb)
    (fun (sa, sb, sc) ->
      (* (A + B) + C = A + (B + C), rebuilding fresh registries so the
         destructive merge can't alias. *)
      let left = pool [ pool [ build sa; build sb ]; build sc ] in
      let right = pool [ build sa; pool [ build sb; build sc ] ] in
      json_equal left right)

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"merge_into commutative"
    QCheck.(pair script_arb script_arb)
    (fun (sa, sb) ->
      json_equal (pool [ build sa; build sb ]) (pool [ build sb; build sa ]))

let prop_merge_identity =
  QCheck.Test.make ~count:200 ~name:"merge_into identity on empty"
    script_arb
    (fun s ->
      (* empty + A = A + empty = A *)
      let a = build s in
      json_equal (pool [ Stats.create (); build s ]) a
      && json_equal (pool [ build s; Stats.create () ]) a)

(* --- replay fixtures ---------------------------------------------------- *)

let replay_trace () = Trace.standard ~length:120 ~n_targets:1 ()
let replay_cfg () = Service.default_config ~targets:[ Vapor_targets.Sse.target ]

(* --- disabled tracer: zero-overhead contract ---------------------------- *)

let disabled_tracer_inert_case () =
  check_bool "disabled is off" false (Tracer.on Tracer.disabled);
  check_bool "sub disabled is off" false (Tracer.on (Tracer.sub Tracer.disabled));
  (* Operations on the disabled tracer must be absorbed without effect. *)
  Tracer.root_begin Tracer.disabled ~ev:0 ~name:"replay_event" [];
  Tracer.span_begin Tracer.disabled ~name:"exec" [];
  Tracer.span_end Tracer.disabled ~name:"exec" ();
  Tracer.root_end Tracer.disabled ~name:"replay_event" ();
  check_string "disabled exports nothing" "" (Tracer.to_jsonl Tracer.disabled)

let disabled_tracer_report_identity_case () =
  (* A replay run with no tracer argument, with the disabled tracer, and
     with a live tracer must all print byte-identical reports: tracing is
     observable only through its own export channel. *)
  let trace = replay_trace () in
  let cfg = replay_cfg () in
  let plain = Service.report_to_string (Service.replay cfg trace) in
  let with_disabled =
    Service.report_to_string (Service.replay ~tracer:Tracer.disabled cfg trace)
  in
  let live = Tracer.create () in
  let with_live =
    Service.report_to_string (Service.replay ~tracer:live cfg trace)
  in
  check_string "disabled tracer report identical" plain with_disabled;
  check_string "live tracer report identical" plain with_live;
  check_bool "live tracer actually captured spans" true
    (String.length (Tracer.to_jsonl live) > 0)

(* --- deterministic traces across domain counts -------------------------- *)

let deterministic_trace_domains_case () =
  let trace = replay_trace () in
  let cfg = replay_cfg () in
  let run domains =
    let tracer = Tracer.create ~wall:false () in
    ignore (Service.replay_sharded ~tracer ~domains cfg trace);
    Tracer.to_jsonl tracer
  in
  let base = run 1 in
  check_bool "trace is non-empty" true (String.length base > 0);
  List.iter
    (fun d ->
      check_string
        (Printf.sprintf "domains=%d trace byte-identical" d)
        base (run d))
    [ 2; 4 ]

let wall_mode_has_timestamps_case () =
  let trace = replay_trace () in
  let tracer = Tracer.create ~wall:true () in
  ignore (Service.replay ~tracer (replay_cfg ()) trace);
  let jsonl = Tracer.to_jsonl tracer in
  let has sub s =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "wall mode carries wall_ns" true (has "\"wall_ns\":" jsonl);
  (* Deterministic mode must omit them entirely. *)
  let det = Tracer.create ~wall:false () in
  ignore (Service.replay ~tracer:det (replay_cfg ()) trace);
  check_bool "deterministic mode omits wall_ns" false
    (has "\"wall_ns\":" (Tracer.to_jsonl det))

(* --- exports ------------------------------------------------------------ *)

let contains sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let export_formats_case () =
  let st = Stats.create () in
  let trace = replay_trace () in
  ignore (Service.replay ~stats:st (replay_cfg ()) trace);
  let prom = Stats.to_prometheus st in
  let json = Stats.to_json st in
  let table = Stats.to_table st in
  (* Prometheus: counters, gauges, and summaries all present, names
     sanitized to [a-z_]. *)
  check_bool "prom has a counter" true
    (contains "# TYPE vapor_cache_hits counter" prom);
  check_bool "prom has the cache.bytes gauge" true
    (contains "# TYPE vapor_cache_bytes gauge" prom);
  check_bool "prom has the slot hit-rate gauge" true
    (contains "vapor_slot_hit_rate " prom);
  (* JSON: the three sections. *)
  check_bool "json has counters" true (contains "\"counters\":" json);
  check_bool "json has gauges" true (contains "\"gauges\":" json);
  check_bool "json has histograms" true (contains "\"histograms\":" json);
  (* Byte-identity contract: gauges never appear in the text table. *)
  check_bool "table excludes gauges" false (contains "cache.bytes" table)

let gauge_pooling_case () =
  (* Sharded replay must pool count-like gauges additively and recompute
     the hit-rate ratio after the merge; the merged gauge set must match
     a single-domain run of the same trace. *)
  let trace = replay_trace () in
  let cfg = replay_cfg () in
  let run domains =
    let st = Stats.create () in
    ignore (Service.replay_sharded ~stats:st ~domains cfg trace);
    st
  in
  let d1 = run 1 and d4 = run 4 in
  List.iter
    (fun g ->
      let v st = Option.value ~default:nan (Stats.gauge st g) in
      Alcotest.(check (float 1e-9)) (g ^ " pools across domains") (v d1) (v d4))
    [ "cache.bytes"; "cache.entries"; "slot.compiles"; "slot.hits";
      "slot.hit_rate"; "tier.quarantined_kernels" ]

(* --- jit-report sanity -------------------------------------------------- *)

let jit_report_rows_case () =
  let rows =
    Jit_report.run ~repeats:1 ~kernels:[ "saxpy_fp"; "convolve_s32" ]
      ~targets:[ Vapor_targets.Sse.target; Vapor_targets.Scalar_target.target ]
      ~profile:Profile.gcc4cli ()
  in
  check_int "one row per (kernel, target)" 4 (List.length rows);
  List.iter
    (fun (r : Jit_report.row) ->
      let ctx = r.Jit_report.jr_kernel ^ "@" ^ r.Jit_report.jr_target in
      check_bool (ctx ^ ": vf >= 1") true (r.Jit_report.jr_vf >= 1);
      check_bool (ctx ^ ": code bytes > 0") true (r.Jit_report.jr_code_bytes > 0);
      check_bool (ctx ^ ": exec cycles > 0") true (r.Jit_report.jr_exec_cycles > 0);
      check_bool
        (ctx ^ ": compile share in [0,1]")
        true
        (r.Jit_report.jr_compile_share >= 0.0
        && r.Jit_report.jr_compile_share <= 1.0);
      check_bool (ctx ^ ": guards non-negative") true
        (r.Jit_report.jr_guards_static >= 0
        && r.Jit_report.jr_guards_dynamic >= 0))
    rows;
  (* SIMD target vectorizes saxpy at the element width; the scalar
     target must report vf 1. *)
  let vf target =
    let r =
      List.find
        (fun (r : Jit_report.row) ->
          r.Jit_report.jr_kernel = "saxpy_fp" && r.Jit_report.jr_target = target)
        rows
    in
    r.Jit_report.jr_vf
  in
  check_int "saxpy_fp vf on sse" 4 (vf "sse");
  check_int "saxpy_fp vf on scalar" 1 (vf "scalar")

(* --- suites ------------------------------------------------------------- *)

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "obs"
    [
      qsuite "stats-pooling"
        [ prop_merge_associative; prop_merge_commutative; prop_merge_identity ];
      ( "tracer",
        [
          Alcotest.test_case "disabled tracer is inert" `Quick
            disabled_tracer_inert_case;
          Alcotest.test_case "tracing never perturbs reports" `Quick
            disabled_tracer_report_identity_case;
          Alcotest.test_case "deterministic trace is domain-count invariant"
            `Quick deterministic_trace_domains_case;
          Alcotest.test_case "wall mode carries timestamps" `Quick
            wall_mode_has_timestamps_case;
        ] );
      ( "exports",
        [
          Alcotest.test_case "prometheus/json/table formats" `Quick
            export_formats_case;
          Alcotest.test_case "gauges pool across domains" `Quick
            gauge_pooling_case;
        ] );
      ( "jit-report",
        [ Alcotest.test_case "row sanity" `Quick jit_report_rows_case ] );
    ]
