(* End-to-end differential tests: every kernel, compiled by every flow for
   every target, must compute what the reference interpreter computes. *)

open Vapor_ir
module Suite = Vapor_kernels.Suite
module Flows = Vapor_harness.Flows
module Targets = Vapor_targets.Scalar_target
module Profile = Vapor_jit.Profile

let fail = Alcotest.fail

let copy_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Eval.Scalar v -> n, Eval.Scalar v
      | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
    args

let compare_arrays ~eps name ref_args got_args =
  List.iter2
    (fun (n1, b1) (_, b2) ->
      if not (Buffer_.close ~eps b1 b2) then
        fail
          (Format.asprintf "%s: array %s differs@.ref: %a@.got: %a" name n1
             Buffer_.pp b1 Buffer_.pp b2))
    (Suite.arrays_of_args ref_args)
    (Suite.arrays_of_args got_args)

(* Run [flow] on fresh args and compare against the interpreter. *)
let differential ~flow entry () =
  let k = Suite.kernel entry in
  let ref_args = entry.Suite.args ~scale:1 in
  ignore (Eval.run k ~args:ref_args);
  let got_args = copy_args (entry.Suite.args ~scale:1) in
  (* [flow] must build its own args; adapt: we run it with got_args by
     constructing a one-shot entry. *)
  let entry' = { entry with Suite.args = (fun ~scale -> ignore scale; got_args) } in
  let (_ : Flows.flow_result) = flow entry' in
  compare_arrays ~eps:1e-3 entry.Suite.name ref_args got_args

let per_target_tests =
  List.concat_map
    (fun target ->
      let tname = target.Vapor_targets.Target.name in
      List.concat_map
        (fun entry ->
          [
            Alcotest.test_case
              (Printf.sprintf "%s %s native-scalar" tname entry.Suite.name)
              `Quick
              (differential
                 ~flow:(fun e -> Flows.native_scalar ~target e ~scale:1)
                 entry);
            Alcotest.test_case
              (Printf.sprintf "%s %s native-vector" tname entry.Suite.name)
              `Quick
              (differential
                 ~flow:(fun e -> Flows.native_vector ~target e ~scale:1)
                 entry);
            Alcotest.test_case
              (Printf.sprintf "%s %s split-mono" tname entry.Suite.name)
              `Quick
              (differential
                 ~flow:(fun e ->
                   Flows.split_vector ~target ~profile:Profile.mono e ~scale:1)
                 entry);
            Alcotest.test_case
              (Printf.sprintf "%s %s split-gcc4cli" tname entry.Suite.name)
              `Quick
              (differential
                 ~flow:(fun e ->
                   Flows.split_vector ~target ~profile:Profile.gcc4cli e
                     ~scale:1)
                 entry);
            Alcotest.test_case
              (Printf.sprintf "%s %s split-scalar-mono" tname entry.Suite.name)
              `Quick
              (differential
                 ~flow:(fun e ->
                   Flows.split_scalar ~target ~profile:Profile.mono e ~scale:1)
                 entry);
          ])
        Suite.all)
    Targets.all

let speedup_sanity_case () =
  (* Vectorization must actually speed up an easy kernel on SSE. *)
  let entry = Suite.find "saxpy_fp" in
  let target = Vapor_targets.Sse.target in
  let s = Flows.native_scalar ~target entry ~scale:2 in
  let v = Flows.native_vector ~target entry ~scale:2 in
  let speedup = float_of_int s.Flows.cycles /. float_of_int v.Flows.cycles in
  if speedup < 1.5 then
    fail (Printf.sprintf "saxpy SSE speedup only %.2fx" speedup)

let scalar_target_case () =
  (* On the no-SIMD target the split bytecode must scalarize and cost about
     the same as native scalar code (low scalarization overhead). *)
  let entry = Suite.find "dscal_fp" in
  let target = Targets.target in
  let s = Flows.native_scalar ~target entry ~scale:2 in
  let v =
    Flows.split_vector ~target ~profile:Profile.gcc4cli entry ~scale:2
  in
  Alcotest.check Alcotest.bool "not vectorized" false v.Flows.vectorized;
  let ratio = float_of_int v.Flows.cycles /. float_of_int s.Flows.cycles in
  if ratio > 1.10 then
    fail (Printf.sprintf "scalarization overhead %.2fx > 1.10x" ratio)

let compile_time_model_case () =
  (* The modeled JIT time is exactly proportional to the bytecode nodes
     processed: compile_time_us = bytecode_nodes * ns_per_node / 1000. *)
  let module Compile = Vapor_jit.Compile in
  List.iter
    (fun name ->
      let entry = Suite.find name in
      let bytecode = (Flows.vectorized_bytecode entry).Vapor_vectorizer.Driver.vkernel in
      let c =
        Compile.compile ~target:Vapor_targets.Sse.target
          ~profile:Profile.gcc4cli bytecode
      in
      if c.Compile.bytecode_nodes <= 0 then
        fail (name ^ ": no bytecode nodes counted");
      let expected =
        float_of_int c.Compile.bytecode_nodes *. Compile.ns_per_node /. 1000.0
      in
      Alcotest.(check (float 1e-6))
        (name ^ " compile time proportional to nodes")
        expected c.Compile.compile_time_us)
    [ "saxpy_fp"; "mmm_fp"; "interp_s16" ]

let vectorized_predicates_case () =
  (* On an all-Vectorize decision list the two predicates must agree. *)
  let module Compile = Vapor_jit.Compile in
  let module Lower = Vapor_jit.Lower in
  let bytecode =
    (Flows.vectorized_bytecode (Suite.find "saxpy_fp"))
      .Vapor_vectorizer.Driver.vkernel
  in
  let c =
    Compile.compile ~target:Vapor_targets.Sse.target ~profile:Profile.gcc4cli
      bytecode
  in
  let all_vectorize =
    c.Compile.decisions <> []
    && List.for_all
         (function Lower.Vectorize -> true | Lower.Scalarize _ -> false)
         c.Compile.decisions
  in
  Alcotest.check Alcotest.bool "saxpy_fp sse lowers all-Vectorize" true
    all_vectorize;
  Alcotest.check Alcotest.bool "fully_vectorized" true
    (Compile.fully_vectorized c);
  Alcotest.check Alcotest.bool "any_vectorized agrees" true
    (Compile.any_vectorized c);
  (* and on the no-SIMD target both must be false *)
  let c0 =
    Compile.compile ~target:Targets.target ~profile:Profile.gcc4cli bytecode
  in
  Alcotest.check Alcotest.bool "scalar target not fully vectorized" false
    (Compile.fully_vectorized c0);
  Alcotest.check Alcotest.bool "scalar target not any vectorized" false
    (Compile.any_vectorized c0)

let altivec_dp_case () =
  (* AltiVec has no doubles: saxpy_dp must scalarize yet stay correct. *)
  let entry = Suite.find "saxpy_dp" in
  let target = Vapor_targets.Altivec.target in
  let v =
    Flows.split_vector ~target ~profile:Profile.gcc4cli entry ~scale:1
  in
  Alcotest.check Alcotest.bool "scalarized" false v.Flows.vectorized

let () =
  Alcotest.run "jit"
    [
      "end-to-end", per_target_tests;
      ( "sanity",
        [
          Alcotest.test_case "sse saxpy speedup" `Quick speedup_sanity_case;
          Alcotest.test_case "scalar target overhead" `Quick
            scalar_target_case;
          Alcotest.test_case "altivec doubles scalarize" `Quick
            altivec_dp_case;
          Alcotest.test_case "compile time model" `Quick
            compile_time_model_case;
          Alcotest.test_case "vectorized predicates" `Quick
            vectorized_predicates_case;
        ] );
    ]
