(* Tests for the persistent code store: index codec round trips (QCheck),
   entry bit-identity across publish/probe and across handles, warm-start
   report identity (single-domain and domains=4), checksum-corruption
   quarantine with recompile fallback, budget GC, and target
   invalidation. *)

module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Encode = Vapor_vecir.Encode
module Store = Vapor_store.Store
module D = Vapor_runtime.Digest
module Stats = Vapor_runtime.Stats
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service

let sse = Vapor_targets.Sse.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bytecode name =
  (Flows.vectorized_bytecode (Suite.find name)).Driver.vkernel

let temp_store_dir () = Filename.temp_dir "vapor_store" ".test"

let open_fresh () =
  let dir = temp_store_dir () in
  match Store.open_store ~create:true dir with
  | Ok s -> s
  | Error m -> fail ("open_store: " ^ m)

let reopen ?max_entries ?max_bytes dir =
  match Store.open_store ?max_entries ?max_bytes dir with
  | Ok s -> s
  | Error m -> fail ("reopen: " ^ m)

let key_of vk =
  {
    Store.sk_digest = D.raw (D.of_vkernel vk);
    sk_target = sse.Vapor_targets.Target.name;
    sk_profile = Profile.mono.Profile.name;
  }

let compile vk =
  match Compile.compile_checked ~target:sse ~profile:Profile.mono vk with
  | Ok c -> c
  | Error e -> fail ("compile: " ^ e.Compile.le_reason)

(* --- index codec: property-tested round trip ---------------------------- *)

let row_gen =
  let open QCheck.Gen in
  let str = string_size ~gen:printable (int_range 0 12) in
  let digest = string_size ~gen:char (return 16) in
  map
    (fun (digest, target, profile, file, bytes, checksum, tick, quarantined) ->
      {
        Store.ix_key =
          { Store.sk_digest = digest; sk_target = target; sk_profile = profile };
        ix_file = file;
        ix_bytes = bytes;
        ix_checksum = checksum;
        ix_tick = tick;
        ix_status = (if quarantined then Store.Quarantined else Store.Valid);
      })
    (tup8 digest str str str (int_bound 100000) digest (int_bound 100000) bool)

let index_arb =
  QCheck.make
    ~print:(fun ix ->
      Printf.sprintf "%d rows, next_tick %d" (List.length ix.Store.ix_rows)
        ix.Store.ix_next_tick)
    QCheck.Gen.(
      map2
        (fun next_tick rows ->
          {
            Store.ix_version = Store.format_version;
            ix_next_tick = next_tick;
            ix_rows = rows;
          })
        (int_bound 100000)
        (list_size (int_bound 20) row_gen))

let prop_index_roundtrip =
  QCheck.Test.make ~count:300 ~name:"index decode(encode ix) = ix" index_arb
    (fun ix -> Store.decode_index (Store.encode_index ix) = Ok ix)

let prop_index_rejects_truncation =
  QCheck.Test.make ~count:100 ~name:"index decode rejects truncation"
    index_arb (fun ix ->
      let enc = Store.encode_index ix in
      String.length enc < 2
      ||
      match Store.decode_index (String.sub enc 0 (String.length enc - 1)) with
      | Error _ -> true
      | Ok _ -> false)

let index_codec_errors_case () =
  let bad s =
    match Store.decode_index s with Error _ -> true | Ok _ -> false
  in
  check_bool "empty rejected" true (bad "");
  check_bool "bad magic rejected" true (bad "NOTANIDX\x00\x00\x00\x00");
  (* A future format version must refuse to decode, not mis-decode. *)
  let future =
    Store.encode_index
      { Store.ix_version = Store.format_version; ix_next_tick = 0; ix_rows = [] }
  in
  let bumped = Bytes.of_string future in
  Bytes.set bumped 8 (Char.chr (Store.format_version + 1));
  check_bool "future version rejected" true (bad (Bytes.to_string bumped))

(* --- entry round trip: what comes out is bit-identical to what went in -- *)

let roundtrip_case () =
  let s = open_fresh () in
  let vk = bytecode "saxpy_fp" in
  let c = compile vk in
  let key = key_of vk in
  let ss = Store.session ~id:0 s in
  (match Store.probe ss ~target:sse key with
  | Store.Miss -> ()
  | _ -> fail "fresh store must miss");
  Store.publish ss key vk c;
  (* A key published this session is served from staging before the
     merge (covers re-probing after an in-memory eviction). *)
  (match Store.probe ss ~target:sse key with
  | Store.Hit _ -> ()
  | _ -> fail "staged entry must hit within the session");
  Store.merge s [ ss ];
  check_int "one entry after merge" 1 (Store.entry_count s);
  (* Probe through a *reopened* handle: the cross-process path. *)
  let s2 = reopen (Store.dir s) in
  let ss2 = Store.session ~id:0 s2 in
  match Store.probe ss2 ~target:sse key with
  | Store.Hit e ->
    check_string "bytecode bit-identical" (Encode.encode vk)
      (Encode.encode e.Store.en_vk);
    check_bool "machine code identical" true
      (e.Store.en_compiled.Compile.mfun = c.Compile.mfun);
    check_bool "decisions identical" true
      (e.Store.en_compiled.Compile.decisions = c.Compile.decisions);
    Alcotest.(check (float 1e-9))
      "modeled compile time identical" c.Compile.compile_time_us
      e.Store.en_compiled.Compile.compile_time_us;
    check_int "bytecode nodes identical" c.Compile.bytecode_nodes
      e.Store.en_compiled.Compile.bytecode_nodes;
    check_bool "scalar regions identical" true
      (e.Store.en_compiled.Compile.forced_scalar_regions
      = c.Compile.forced_scalar_regions)
  | Store.Miss -> fail "persisted entry missed"
  | Store.Corrupt m -> fail ("persisted entry corrupt: " ^ m)

let open_errors_case () =
  (match Store.open_store "/nonexistent/vapor/store" with
  | Error _ -> ()
  | Ok _ -> fail "missing dir without ~create must error");
  let dir = temp_store_dir () in
  let oc = open_out_bin (Filename.concat dir "junk.txt") in
  output_string oc "junk";
  close_out oc;
  match Store.open_store dir with
  | Error _ -> ()
  | Ok _ -> fail "non-store dir must error"

(* --- replay fixtures ---------------------------------------------------- *)

let replay_trace () = Trace.standard ~length:120 ~n_targets:1 ()

let cfg_with store =
  { (Service.default_config ~targets:[ sse ]) with Service.cfg_store = store }

let gauge st name = Option.value ~default:nan (Stats.gauge st name)

(* --- warm start: byte-identical report, zero real compiles -------------- *)

let warm_start_identity_case () =
  let trace = replay_trace () in
  let s = open_fresh () in
  let cold_st = Stats.create () in
  let cold =
    Service.report_to_string
      (Service.replay ~stats:cold_st (cfg_with (Some s)) trace)
  in
  check_bool "cold run compiled for real" true
    (gauge cold_st "jit.real_compiles" > 0.0);
  check_bool "cold run published" true (gauge cold_st "store.publishes" > 0.0);
  (* Fresh handle = fresh process: everything must come from disk. *)
  let warm_store = reopen (Store.dir s) in
  let warm_st = Stats.create () in
  let warm =
    Service.report_to_string
      (Service.replay ~stats:warm_st (cfg_with (Some warm_store)) trace)
  in
  check_string "warm report byte-identical to cold" cold warm;
  Alcotest.(check (float 0.0))
    "warm run performs zero real compiles" 0.0
    (gauge warm_st "jit.real_compiles");
  Alcotest.(check (float 0.0))
    "warm store misses zero" 0.0 (gauge warm_st "store.misses");
  Alcotest.(check (float 0.0))
    "warm store hit rate 1.0" 1.0 (gauge warm_st "store.hit_rate");
  (* And a storeless run is byte-identical too: the store must be
     observable only through gauges, never through the report. *)
  let plain = Service.report_to_string (Service.replay (cfg_with None) trace) in
  check_string "store never perturbs the report" plain cold

(* --- concurrent domains: no lost or torn entries ------------------------ *)

let sharded_publish_case () =
  let trace = replay_trace () in
  let s = open_fresh () in
  let cold_st = Stats.create () in
  let cold =
    Service.report_to_string
      (Service.replay_sharded ~stats:cold_st ~domains:4 (cfg_with (Some s))
         trace)
  in
  let published = gauge cold_st "store.publishes" in
  check_bool "shards published" true (published > 0.0);
  check_int "no lost or duplicated entries"
    (int_of_float published) (Store.entry_count s);
  (* Every entry written under concurrency verifies cleanly: no torn
     writes. *)
  check_int "no torn entries" 0 (List.length (Store.verify s));
  (* Same trace, single-domain, storeless: sharding and the store leave
     the report untouched. *)
  let plain =
    Service.report_to_string (Service.replay (cfg_with None) trace)
  in
  check_string "domains=4 store run report-identical" plain cold;
  (* Warm domains=4 over the shared store: all shards hit, none compile. *)
  let warm_store = reopen (Store.dir s) in
  let warm_st = Stats.create () in
  let warm =
    Service.report_to_string
      (Service.replay_sharded ~stats:warm_st ~domains:4
         (cfg_with (Some warm_store)) trace)
  in
  check_string "warm domains=4 byte-identical" cold warm;
  Alcotest.(check (float 0.0))
    "warm domains=4 zero real compiles" 0.0
    (gauge warm_st "jit.real_compiles");
  Alcotest.(check (float 0.0))
    "warm domains=4 store hit rate 1.0" 1.0 (gauge warm_st "store.hit_rate")

(* --- corruption: detected, quarantined, recompiled ---------------------- *)

let flip_byte_in_first_object dir =
  let objects = Filename.concat dir "objects" in
  match Array.to_list (Sys.readdir objects) with
  | [] -> fail "no object files to corrupt"
  | name :: _ ->
    let path = Filename.concat objects name in
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    (* Flip a payload byte (the tail is payload; the head is header). *)
    let off = n - 8 in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc

let corruption_quarantine_case () =
  let trace = replay_trace () in
  let s = open_fresh () in
  let cold_st = Stats.create () in
  let cold =
    Service.report_to_string
      (Service.replay ~stats:cold_st (cfg_with (Some s)) trace)
  in
  flip_byte_in_first_object (Store.dir s);
  (* The replay over the damaged store must detect the corruption at
     probe time, quarantine the entry, recompile, and produce the same
     report — no wrong code is ever served, and the caller sees exit-0
     behavior. *)
  let hurt_store = reopen (Store.dir s) in
  let hurt_st = Stats.create () in
  let hurt =
    Service.report_to_string
      (Service.replay ~stats:hurt_st (cfg_with (Some hurt_store)) trace)
  in
  check_string "corrupted-store report byte-identical" cold hurt;
  Alcotest.(check (float 0.0))
    "exactly one verify failure" 1.0 (gauge hurt_st "store.verify_fails");
  Alcotest.(check (float 0.0))
    "exactly one quarantine" 1.0 (gauge hurt_st "store.quarantined");
  Alcotest.(check (float 0.0))
    "exactly one recompile" 1.0 (gauge hurt_st "jit.real_compiles");
  Alcotest.(check (float 0.0))
    "recompiled body republished" 1.0 (gauge hurt_st "store.publishes");
  (* The republish replaced the quarantined row: the store is healthy
     again for the next process. *)
  let healed = reopen (Store.dir s) in
  check_int "store verifies clean after healing" 0
    (List.length (Store.verify healed));
  check_int "nothing left quarantined under the key" 0
    (Store.quarantined_count healed)

(* --- crash safety: kill mid-publish, heal at open ----------------------- *)

let truncate_first_object dir =
  let objects = Filename.concat dir "objects" in
  match Array.to_list (Sys.readdir objects) with
  | [] -> fail "no object files to tear"
  | name :: _ ->
    let path = Filename.concat objects name in
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let half = really_input_string ic (n / 2) in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc half;
    close_out oc

let crash_recovery_case () =
  let trace = replay_trace () in
  let s = open_fresh () in
  let cold =
    Service.report_to_string (Service.replay (cfg_with (Some s)) trace)
  in
  let dir = Store.dir s in
  let objects = Filename.concat dir "objects" in
  (* Simulate a process killed mid-publish/mid-merge: a torn entry file
     the index still lists as valid, the stale temp of an index rename
     that never happened, an orphaned object temp, and a staging dir
     from a session that never merged. *)
  truncate_first_object dir;
  let write path body =
    let oc = open_out_bin path in
    output_string oc body;
    close_out oc
  in
  write (Filename.concat dir "index.vci.tmp") "partial index write";
  write (Filename.concat objects "orphan.vce.tmp") "partial entry write";
  let staging = Filename.concat (Filename.concat dir "staging") "s99-7" in
  Sys.mkdir staging 0o755;
  write (Filename.concat staging "leftover.vce") "never merged";
  (* Reopen runs crash recovery. *)
  let healed = reopen dir in
  check_bool "heal accounted every artifact" true
    ((Store.counters healed).Store.c_torn_healed >= 4);
  check_int "torn entry quarantined, not served" 1
    (Store.quarantined_count healed);
  check_bool "stale index temp removed" false
    (Sys.file_exists (Filename.concat dir "index.vci.tmp"));
  check_bool "orphaned object temp removed" false
    (Sys.file_exists (Filename.concat objects "orphan.vce.tmp"));
  check_bool "staging leftovers swept" false (Sys.file_exists staging);
  (* The healed store serves: the torn entry recompiles, everything else
     comes warm, and the report is byte-identical to the cold run. *)
  let warm_st = Stats.create () in
  let warm =
    Service.report_to_string
      (Service.replay ~stats:warm_st (cfg_with (Some healed)) trace)
  in
  check_string "healed report byte-identical to cold" cold warm;
  Alcotest.(check (float 0.0))
    "exactly one recompile for the torn entry" 1.0
    (gauge warm_st "jit.real_compiles");
  check_bool "torn_healed gauge exported" true
    (gauge warm_st "store.torn_healed" >= 4.0);
  (* Next process: nothing left to heal, the store verifies clean. *)
  let clean = reopen dir in
  check_int "nothing to heal on the next open" 0
    (Store.counters clean).Store.c_torn_healed;
  check_int "store verifies clean after healing" 0
    (List.length (Store.verify clean));
  check_int "republish cleared the quarantine" 0
    (Store.quarantined_count clean)

(* --- GC and invalidation ------------------------------------------------ *)

let populate s =
  let trace = replay_trace () in
  ignore (Service.replay (cfg_with (Some s)) trace);
  Store.entry_count s

let gc_budget_case () =
  let s = open_fresh () in
  let n = populate s in
  check_bool "populated several entries" true (n > 3);
  let evicted = Store.gc ~max_entries:3 s in
  check_int "evictions reported" (n - 3) evicted;
  check_int "entry budget enforced" 3 (Store.entry_count s);
  (* The index and the object files agree after GC. *)
  let objects = Filename.concat (Store.dir s) "objects" in
  check_int "object files match the index" 3
    (Array.length (Sys.readdir objects));
  (* Byte budget: shrink until only one entry fits. *)
  let evicted = Store.gc ~max_bytes:1 s in
  check_bool "byte budget evicts down to one entry" true (evicted >= 1);
  check_int "an oversized single entry may stay" 1 (Store.entry_count s);
  (* Budgets persist through reopen (given again at open time). *)
  let s2 = reopen ~max_entries:1 (Store.dir s) in
  check_int "reopen sees the survivors" 1 (Store.entry_count s2)

let invalidate_target_case () =
  let s = open_fresh () in
  let n = populate s in
  let quarantined = Store.invalidate_target s ~from_target:"sse" in
  check_int "every sse entry quarantined" n quarantined;
  check_int "no valid entries left" 0 (Store.entry_count s);
  check_int "quarantined, not deleted" n (Store.quarantined_count s);
  (* Quarantined entries never serve. *)
  let vk = bytecode "saxpy_fp" in
  let ss = Store.session ~id:0 s in
  (match Store.probe ss ~target:sse (key_of vk) with
  | Store.Miss -> ()
  | _ -> fail "quarantined entry must not serve");
  check_int "unrelated target untouched" 0
    (Store.invalidate_target s ~from_target:"avx")

(* --- suites ------------------------------------------------------------- *)

let qsuite name tests = name, List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "store"
    [
      qsuite "index-codec"
        [ prop_index_roundtrip; prop_index_rejects_truncation ];
      ( "format",
        [
          Alcotest.test_case "codec error paths" `Quick index_codec_errors_case;
          Alcotest.test_case "entry round trip is bit-identical" `Quick
            roundtrip_case;
          Alcotest.test_case "open errors are user errors" `Quick
            open_errors_case;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "warm report byte-identical, zero compiles"
            `Quick warm_start_identity_case;
          Alcotest.test_case "domains=4 publish loses nothing" `Quick
            sharded_publish_case;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "corrupted entry quarantined and recompiled"
            `Quick corruption_quarantine_case;
          Alcotest.test_case "kill mid-publish heals at open" `Quick
            crash_recovery_case;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "gc respects budgets" `Quick gc_budget_case;
          Alcotest.test_case "invalidate_target quarantines stale code"
            `Quick invalidate_target_case;
        ] );
    ]
