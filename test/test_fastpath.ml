(* Tests for the fast-path execution engine: the slot-compiled interpreter
   (Vfast) against the reference Veval, the pre-resolved simulator plans
   against the original Simulator.run, and the sharded replay driver
   against the single-domain service. *)

open Vapor_ir
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows
module Veval = Vapor_vecir.Veval
module Vfast = Vapor_vecir.Vfast
module Target = Vapor_targets.Target

module Exec = Vapor_harness.Exec
module Compile = Vapor_jit.Compile
module Profile = Vapor_jit.Profile
module Service = Vapor_runtime.Service
module Tiered = Vapor_runtime.Tiered
module Trace = Vapor_runtime.Trace
module Faults = Vapor_runtime.Faults
module Stats = Vapor_runtime.Stats
module Code_cache = Vapor_runtime.Code_cache

let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bytecode (entry : Suite.entry) =
  (Flows.vectorized_bytecode entry).Driver.vkernel

let copy_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Eval.Scalar v -> n, Eval.Scalar v
      | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
    args

let veval_mode (target : Target.t) =
  if Target.has_simd target then Veval.Vector target.Target.vs
  else Veval.Scalarized

let arrays = Suite.arrays_of_args

let check_args_bit_equal ctx a b =
  List.iter2
    (fun (n1, b1) (_, b2) ->
      if not (Buffer_.equal b1 b2) then
        fail (Printf.sprintf "%s: array %s differs bitwise" ctx n1))
    (arrays a) (arrays b)

let mode_name = function
  | Veval.Vector vs -> Printf.sprintf "v%d" vs
  | Veval.Scalarized -> "scalarized"

(* The final scalar environments must carry the same bindings. *)
let check_scalars_equal ctx (ref_s : (string, Value.t) Hashtbl.t) fast_s =
  check_int (ctx ^ ": scalar count") (Hashtbl.length ref_s)
    (Hashtbl.length fast_s);
  Hashtbl.iter
    (fun name v ->
      match Hashtbl.find_opt fast_s name with
      | None -> fail (Printf.sprintf "%s: scalar %s missing" ctx name)
      | Some v' ->
        if not (Value.equal v v') then
          fail
            (Printf.sprintf "%s: scalar %s = %s, reference %s" ctx name
               (Value.to_string v') (Value.to_string v)))
    ref_s

(* --- slot-compiled interpreter == reference Veval ---------------------- *)

let vfast_sweep_case () =
  (* Every kernel, every target's vector size plus scalarized mode: the
     slot-compiled body and the reference evaluator must agree bit-for-bit
     on every output buffer and every final scalar. *)
  List.iter
    (fun (entry : Suite.entry) ->
      let vk = bytecode entry in
      List.iter
        (fun (target : Target.t) ->
          List.iter
            (fun mode ->
              let ctx =
                Printf.sprintf "%s/%s/%s" entry.Suite.name
                  target.Target.name (mode_name mode)
              in
              let fast_args = entry.Suite.args ~scale:1 in
              let ref_args = copy_args fast_args in
              let ref_s = Veval.run vk ~mode ~args:ref_args in
              let compiled = Vfast.compile vk ~mode in
              let fast_s = Vfast.run compiled ~args:fast_args in
              check_args_bit_equal ctx ref_args fast_args;
              check_scalars_equal ctx ref_s fast_s)
            [ veval_mode target; Veval.Scalarized ])
        Vapor_targets.Scalar_target.all)
    Suite.all

let vfast_guard_false_case () =
  (* With every version guard failing, the fallback branches run; the fast
     path must take them identically. *)
  let guard_true _ = false in
  List.iter
    (fun (entry : Suite.entry) ->
      let vk = bytecode entry in
      let mode = Veval.Vector 16 in
      let ctx = entry.Suite.name ^ "/guard-false" in
      let fast_args = entry.Suite.args ~scale:1 in
      let ref_args = copy_args fast_args in
      let ref_s = Veval.run ~guard_true vk ~mode ~args:ref_args in
      let compiled = Vfast.compile vk ~mode in
      let fast_s = Vfast.run ~guard_true compiled ~args:fast_args in
      check_args_bit_equal ctx ref_args fast_args;
      check_scalars_equal ctx ref_s fast_s)
    Suite.all

let vfast_reuse_case () =
  (* One compiled body, run repeatedly: runs are independent (fresh
     environment each time) and keep matching the reference. *)
  let entry = Suite.find "sfir_fp" in
  let vk = bytecode entry in
  let mode = Veval.Vector 16 in
  let compiled = Vfast.compile vk ~mode in
  for i = 1 to 3 do
    let fast_args = entry.Suite.args ~scale:1 in
    let ref_args = copy_args fast_args in
    let ref_s = Veval.run vk ~mode ~args:ref_args in
    let fast_s = Vfast.run compiled ~args:fast_args in
    let ctx = Printf.sprintf "sfir_fp run %d" i in
    check_args_bit_equal ctx ref_args fast_args;
    check_scalars_equal ctx ref_s fast_s
  done

let error_message body_error args_of =
  match body_error args_of with
  | exception Veval.Error m -> Some m
  | _ -> None

let vfast_error_equiv_case () =
  (* Faults must match the reference exactly: same exception, same
     message, for missing arguments, kind mismatches, and argument-order
     robustness. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode entry in
  let mode = Veval.Vector 16 in
  let compiled = Vfast.compile vk ~mode in
  let cases =
    [
      "missing", (fun args -> List.tl args);
      ( "kind-mismatch",
        fun args ->
          List.map
            (fun (n, a) ->
              match a with
              | Eval.Array _ -> n, Eval.Scalar (Value.Int 0)
              | other -> n, other)
            args );
    ]
  in
  List.iter
    (fun (name, mangle) ->
      let ref_err =
        error_message
          (fun args -> ignore (Veval.run vk ~mode ~args))
          (mangle (entry.Suite.args ~scale:1))
      in
      let fast_err =
        error_message
          (fun args -> ignore (Vfast.run compiled ~args))
          (mangle (entry.Suite.args ~scale:1))
      in
      check_bool (name ^ ": reference faulted") true (ref_err <> None);
      Alcotest.(check (option string)) (name ^ ": same message") ref_err
        fast_err)
    cases;
  (* Argument order must not matter (assoc lookup, like the reference). *)
  let fast_args = List.rev (entry.Suite.args ~scale:1) in
  let ref_args = copy_args fast_args in
  ignore (Veval.run vk ~mode ~args:ref_args);
  ignore (Vfast.run compiled ~args:fast_args);
  check_args_bit_equal "reversed args" ref_args fast_args

let vfast_corrupt_case () =
  (* A corrupted slot body must produce output the reference would not —
     the detectability contract the differential oracle relies on. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode entry in
  let mode = Veval.Vector 16 in
  let bad = Vfast.corrupt (Vfast.compile vk ~mode) in
  let fast_args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args fast_args in
  ignore (Veval.run vk ~mode ~args:ref_args);
  ignore (Vfast.run bad ~args:fast_args);
  let differs =
    List.exists2
      (fun (_, b1) (_, b2) -> not (Buffer_.equal b1 b2))
      (arrays ref_args) (arrays fast_args)
  in
  check_bool "corrupted body differs from reference" true differs

(* --- pre-resolved plans == reference simulator ------------------------- *)

let plan_sweep_case () =
  (* Every kernel x target x profile: the plan-driven [Exec.run] must
     report the same cycles and instructions as the pre-plan
     [Exec.run_reference], and leave bit-identical buffers. *)
  List.iter
    (fun (entry : Suite.entry) ->
      let vk = bytecode entry in
      List.iter
        (fun (target : Target.t) ->
          List.iter
            (fun (profile : Profile.t) ->
              let ctx =
                Printf.sprintf "%s/%s/%s" entry.Suite.name
                  target.Target.name profile.Profile.name
              in
              let compiled = Compile.compile ~target ~profile vk in
              let fast_args = entry.Suite.args ~scale:1 in
              let ref_args = copy_args fast_args in
              let rr = Exec.run_reference target compiled ~args:ref_args in
              let rf = Exec.run target compiled ~args:fast_args in
              check_int (ctx ^ ": cycles") rr.Exec.cycles rf.Exec.cycles;
              check_int (ctx ^ ": instructions") rr.Exec.instructions
                rf.Exec.instructions;
              check_args_bit_equal ctx ref_args fast_args)
            [ Profile.mono; Profile.gcc4cli ])
        Vapor_targets.Scalar_target.all)
    Suite.all

(* --- replay: fast engine and shards are report-identical ---------------- *)

let replay_trace () = Trace.standard ~length:300 ~n_targets:1 ()

let replay_cfg engine =
  {
    (Service.default_config ~targets:[ Vapor_targets.Sse.target ]) with
    Service.cfg_engine = engine;
  }

let replay_engine_equiv_case () =
  (* The fast engine must not be observable in the report: byte-identical
     output to the reference engine over a standard trace. *)
  let trace = replay_trace () in
  let r_ref =
    Service.report_to_string (Service.replay (replay_cfg Tiered.Reference) trace)
  in
  let r_fast =
    Service.report_to_string (Service.replay (replay_cfg Tiered.Fast) trace)
  in
  check_string "fast report == reference report" r_ref r_fast

let replay_domains_case () =
  (* Sharded replay must merge back to the same report for any domain
     count — the determinism contract behind [serve-replay --domains N]. *)
  let trace = replay_trace () in
  let cfg = replay_cfg Tiered.Fast in
  let base =
    Service.report_to_string (Service.replay_sharded ~domains:1 cfg trace)
  in
  List.iter
    (fun d ->
      let r =
        Service.report_to_string (Service.replay_sharded ~domains:d cfg trace)
      in
      check_string (Printf.sprintf "domains=%d report identical" d) base r)
    [ 2; 4 ]

(* --- guarded interplay: corrupted slot bodies are quarantined ----------- *)

let corrupt_slot_quarantine_case () =
  (* A corrupted slot-compiled interpreter body must be caught by the
     differential oracle and quarantined exactly like a corrupted JIT
     body: mismatch counted, kernel quarantined, and the caller handed
     the reference answer. *)
  let entry = Suite.find "saxpy_fp" in
  let vk = bytecode entry in
  let target = Vapor_targets.Sse.target in
  let st = Stats.create () in
  let cache = Code_cache.create ~stats:st () in
  let guard =
    {
      Tiered.g_oracle = Some Tiered.oracle_always;
      g_faults =
        Some (Faults.make { Faults.default_spec with Faults.f_corrupt_rate = 1.0 });
      g_retry_budget = 3;
    }
  in
  let tiered =
    Tiered.create ~stats:st ~guard ~engine:Tiered.Fast ~cache
      ~hotness_threshold:1000 ()
  in
  let fast_args = entry.Suite.args ~scale:1 in
  let ref_args = copy_args fast_args in
  ignore (Veval.run vk ~mode:(veval_mode target) ~args:ref_args);
  ignore
    (Tiered.invoke tiered ~target ~profile:Profile.gcc4cli vk ~args:fast_args);
  check_bool "oracle mismatch recorded" true
    (Stats.counter st "oracle.mismatches" >= 1);
  check_bool "kernel quarantined" true
    (List.exists
       (fun (s : Tiered.kstate) -> s.Tiered.ks_quarantined)
       (Tiered.states tiered));
  check_args_bit_equal "caller got the reference answer" ref_args fast_args

let slot_cache_counter_case () =
  (* One kernel invoked repeatedly in the interpreter tier compiles its
     slot body once and reuses it on every later invocation. *)
  let entry = Suite.find "sfir_fp" in
  let vk = bytecode entry in
  let target = Vapor_targets.Sse.target in
  let st = Stats.create () in
  let cache = Code_cache.create ~stats:st () in
  let tiered = Tiered.create ~stats:st ~cache ~hotness_threshold:1000 () in
  for _ = 1 to 5 do
    ignore
      (Tiered.invoke tiered ~target ~profile:Profile.gcc4cli vk
         ~args:(entry.Suite.args ~scale:1))
  done;
  check_int "one slot compilation" 1 (Tiered.slot_compiles tiered);
  check_int "four slot hits" 4 (Tiered.slot_hits tiered)

let () =
  Alcotest.run "fastpath"
    [
      ( "vfast",
        [
          Alcotest.test_case "suite x targets x modes bit-equal" `Quick
            vfast_sweep_case;
          Alcotest.test_case "fallback branches bit-equal" `Quick
            vfast_guard_false_case;
          Alcotest.test_case "compiled body reusable" `Quick vfast_reuse_case;
          Alcotest.test_case "faults identical to reference" `Quick
            vfast_error_equiv_case;
          Alcotest.test_case "corrupt body detectable" `Quick
            vfast_corrupt_case;
        ] );
      ( "engine",
        [
          Alcotest.test_case "plans match reference simulator" `Quick
            plan_sweep_case;
          Alcotest.test_case "fast replay report-identical" `Quick
            replay_engine_equiv_case;
          Alcotest.test_case "domains 1/2/4 reports identical" `Quick
            replay_domains_case;
          Alcotest.test_case "corrupt slot body quarantined" `Quick
            corrupt_slot_quarantine_case;
          Alcotest.test_case "slot bodies compiled once" `Quick
            slot_cache_counter_case;
        ] );
    ]
