(* Tests for the wide-vector targets: late-bound SVE vector-length
   resolution and cross-VL bit-identity, AVX-512 native masking vs the
   older targets' blend emulation, the predicated vector tail, the
   upgrade-rejuvenation path (sse->avx512, neon->sve) through the replay
   service's retarget triggers, and heterogeneous-fleet serving
   determinism across domain counts. *)

open Vapor_ir
module Suite = Vapor_kernels.Suite
module Driver = Vapor_vectorizer.Driver
module Flows = Vapor_harness.Flows
module Exec = Vapor_harness.Exec
module Profile = Vapor_jit.Profile
module Compile = Vapor_jit.Compile
module Bytecode = Vapor_vecir.Bytecode
module Veval = Vapor_vecir.Veval
module Target = Vapor_targets.Target
module Minstr = Vapor_machine.Minstr
module Mfun = Vapor_machine.Mfun
module Stats = Vapor_runtime.Stats
module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service
module Workload = Vapor_serve.Workload
module Serve = Vapor_serve.Serve

let scalar = Vapor_targets.Scalar_target.target
let sse = Vapor_targets.Sse.target
let avx = Vapor_targets.Avx.target
let neon = Vapor_targets.Neon.target
let altivec = Vapor_targets.Altivec.target
let sve = Vapor_targets.Sve.target
let avx512 = Vapor_targets.Avx512.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let mono = Profile.mono

let copy_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Eval.Scalar v -> n, Eval.Scalar v
      | Eval.Array b -> n, Eval.Array (Buffer_.copy b))
    args

let args_equal a b =
  List.for_all2
    (fun (_, x) (_, y) ->
      match x, y with
      | Eval.Array bx, Eval.Array by -> Buffer_.equal bx by
      | _, _ -> true)
    a b

(* Compile and run one suite entry on [target]; returns the mutated args. *)
let run_on ?(scale = 2) (entry : Suite.entry) target =
  let result = Driver.vectorize (Suite.kernel entry) in
  let compiled = Compile.compile ~target ~profile:mono result.Driver.vkernel in
  let args = entry.Suite.args ~scale in
  ignore (Exec.run target compiled ~args);
  args

(* --- late-bound resolution ----------------------------------------------- *)

let resolve_case () =
  check_bool "registry sve is late-bound" true sve.Target.vs_late_bound;
  check_bool "avx512 is fixed" false avx512.Target.vs_late_bound;
  let r = Target.resolve sve in
  check_string "default VL names sve256" "sve256" r.Target.name;
  check_int "default VL is 32 bytes" 32 r.Target.vs;
  check_bool "resolved target is concrete" false r.Target.vs_late_bound;
  check_string "16 bytes -> sve128" "sve128"
    (Target.resolve ~vl:16 sve).Target.name;
  check_string "64 bytes -> sve512" "sve512"
    (Target.resolve ~vl:64 sve).Target.name;
  check_bool "resolve is idempotent" true
    (Target.resolve (Target.resolve ~vl:64 sve) == Target.resolve ~vl:64 sve
    || (Target.resolve (Target.resolve ~vl:64 sve)).Target.name = "sve512");
  check_bool "fixed target resolves to itself" true
    (Target.resolve sse == sse);
  (match Target.resolve ~vl:128 sve with
  | _ -> fail "VL outside [vl_min,vl_max] must be rejected"
  | exception Invalid_argument _ -> ());
  match Target.resolve ~vl:32 sse with
  | _ -> fail "pinning a fixed target to a foreign VL must be rejected"
  | exception Invalid_argument _ -> ()

(* --- SVE bit-identity across vector lengths ------------------------------ *)

(* Every kernel without an FP reduction must produce identical bits at
   VL 128/256/512 (the vector-length-agnostic contract); FP-reduction
   kernels legitimately vary (the partial-sum partition follows the VF)
   but must still bit-match the reference interpreter at each VL. *)
let sve_vl_identity_case () =
  let vls = [ 16; 32; 64 ] in
  List.iter
    (fun (entry : Suite.entry) ->
      let result = Driver.vectorize (Suite.kernel entry) in
      let vk = result.Driver.vkernel in
      if Bytecode.has_fp_reduction vk then
        List.iter
          (fun vl ->
            let t = Target.resolve ~vl sve in
            let args = run_on entry t in
            let ref_args = copy_args (entry.Suite.args ~scale:2) in
            ignore
              (Veval.run vk ~mode:(Veval.Vector t.Target.vs) ~args:ref_args);
            check_bool
              (Printf.sprintf "%s matches interpreter at %s" entry.Suite.name
                 t.Target.name)
              true
              (args_equal args ref_args))
          vls
      else
        let outs =
          List.map (fun vl -> vl, run_on entry (Target.resolve ~vl sve)) vls
        in
        match outs with
        | (_, first) :: rest ->
          List.iter
            (fun (vl, args) ->
              check_bool
                (Printf.sprintf "%s bit-identical at VL %d vs 128"
                   entry.Suite.name (vl * 8))
                true (args_equal first args))
            rest
        | [] -> fail "no VLs")
    Suite.all

let sve_vl_qcheck =
  QCheck.Test.make ~count:60 ~name:"random (kernel, scale): sve VLs agree"
    QCheck.(pair (int_bound (List.length Suite.all - 1)) (int_range 1 3))
    (fun (ki, scale) ->
      let entry = List.nth Suite.all ki in
      let result = Driver.vectorize (Suite.kernel entry) in
      if Bytecode.has_fp_reduction result.Driver.vkernel then true
      else
        let a128 = run_on ~scale entry (Target.resolve ~vl:16 sve) in
        let a256 = run_on ~scale entry (Target.resolve ~vl:32 sve) in
        let a512 = run_on ~scale entry (Target.resolve ~vl:64 sve) in
        args_equal a128 a256 && args_equal a128 a512)

(* --- AVX-512 native masking vs blend emulation --------------------------- *)

(* The masked instructions only change how lanes are guarded, never which
   values come out: AVX-512 (native masking, VS 64) must agree bit-for-bit
   with AVX (blend emulation, VS 32) on every kernel whose bits are
   VF-invariant, and with the reference interpreter on all of them. *)
let avx512_vs_blend_case () =
  List.iter
    (fun (entry : Suite.entry) ->
      let result = Driver.vectorize (Suite.kernel entry) in
      let vk = result.Driver.vkernel in
      let wide = run_on entry avx512 in
      let ref_args = copy_args (entry.Suite.args ~scale:2) in
      ignore (Veval.run vk ~mode:(Veval.Vector avx512.Target.vs) ~args:ref_args);
      check_bool
        (Printf.sprintf "%s: avx512 matches interpreter" entry.Suite.name)
        true
        (args_equal wide ref_args);
      if not (Bytecode.has_fp_reduction vk) then begin
        let blend = run_on entry avx in
        check_bool
          (Printf.sprintf "%s: avx512 masked == avx blend" entry.Suite.name)
          true (args_equal wide blend)
      end)
    Suite.all

(* --- predicated vector tail ---------------------------------------------- *)

let masked_count target =
  let result = Driver.vectorize (Suite.kernel (Suite.find "saxpy_fp")) in
  let compiled = Compile.compile ~target ~profile:mono result.Driver.vkernel in
  Array.fold_left
    (fun n (i : Minstr.t) ->
      match i with
      | Minstr.VMaskedLoad _ | Minstr.VMaskedStore _ -> n + 1
      | _ -> n)
    0 compiled.Compile.mfun.Mfun.instrs

let masked_tail_case () =
  check_bool "avx512 emits masked instructions" true (masked_count avx512 > 0);
  check_bool "sve emits masked instructions" true
    (masked_count (Target.resolve sve) > 0);
  (* Old targets have no native masking: the sentinel cost model and the
     emitter must keep them on the scalar-epilogue path. *)
  List.iter
    (fun t ->
      check_int
        (Printf.sprintf "%s emits no masked instructions" t.Target.name)
        0 (masked_count t))
    [ scalar; sse; avx; neon; altivec ]

(* --- upgrade rejuvenation through the replay service --------------------- *)

let upgrade_rejuvenation_case () =
  let trace = Trace.standard ~length:240 ~n_targets:2 () in
  let cfg =
    {
      (Service.default_config ~targets:[ sse; neon ]) with
      Service.cfg_retargets =
        [ 80, sse, avx512; 80, neon, Target.resolve sve ];
      cfg_label_targets = true;
    }
  in
  let stats = Stats.create () in
  let rp = Service.replay ~stats cfg trace in
  check_int "every event served" 240 rp.Service.rp_invocations;
  check_bool "cached bodies were re-lowered to the upgraded targets" true
    (rp.Service.rp_rejuvenations > 0);
  check_bool "old-target cache entries were invalidated" true
    (Stats.counter stats "cache.invalidations" > 0);
  let rows t = List.filter (fun (r : Service.kernel_row) -> r.Service.kr_target = t) rp.Service.rp_rows in
  check_bool "avx512 served traffic after the upgrade" true
    (List.exists (fun (r : Service.kernel_row) -> r.Service.kr_invocations > 0) (rows "avx512"));
  check_bool "sve256 served traffic after the upgrade" true
    (List.exists (fun (r : Service.kernel_row) -> r.Service.kr_invocations > 0) (rows "sve256"));
  (* Rejuvenated bodies recompile on the upgraded target: the new target
     must pay real compiles of its own (visible as cache misses after the
     trigger) and the per-target labels must cover every invocation. *)
  let labeled t = Stats.counter stats ("target." ^ t ^ ".invocations") in
  check_int "labels account every invocation" 240
    (List.fold_left (fun acc t -> acc + labeled t)
       0 [ "sse"; "neon"; "avx512"; "sve256" ]);
  check_bool "upgraded targets recompiled" true
    (List.exists (fun (r : Service.kernel_row) -> r.Service.kr_jit_runs > 0)
       (rows "avx512" @ rows "sve256"))

(* Upgrading must not change what comes out: a retargeted replay still
   answers every event and an unretargeted control over the same trace
   serves the same count (outputs are oracle-checked elsewhere; here the
   service-level conservation is the contract). *)
let upgrade_conservation_case () =
  let trace = Trace.standard ~length:160 ~n_targets:1 () in
  let plain =
    Service.replay (Service.default_config ~targets:[ sse ]) trace
  in
  let upgraded =
    Service.replay
      {
        (Service.default_config ~targets:[ sse ]) with
        Service.cfg_retargets = [ 60, sse, avx512 ];
      }
      trace
  in
  check_int "same invocation count" plain.Service.rp_invocations
    upgraded.Service.rp_invocations;
  check_bool "rejuvenated bodies counted" true
    (upgraded.Service.rp_rejuvenations > 0)

(* --- heterogeneous fleet: determinism across domains --------------------- *)

let fleet_domains_case () =
  let population =
    [ scalar; sse; avx; neon; altivec; Target.resolve ~vl:16 sve; avx512 ]
  in
  let trace =
    Trace.standard ~length:280 ~n_targets:(List.length population) ()
  in
  let run domains =
    let cfg =
      {
        (Service.default_config ~targets:population) with
        Service.cfg_retargets =
          [ 90, sse, avx512; 90, neon, Target.resolve sve ];
        cfg_label_targets = true;
      }
    in
    let stats = Stats.create () in
    let rep =
      Serve.run ~stats
        {
          Serve.sv_service = cfg;
          sv_domains = domains;
          sv_lanes = 2;
          sv_budget = 8;
          sv_backlog = None;
          sv_faults = None;
          sv_breaker_threshold = 3;
          sv_breaker_cooldown = 1_000_000;
          sv_max_batch = 1;
          sv_batch_window = 1024;
          sv_checkpoint_every = 0;
          sv_journal_dir = None;
          sv_restart_limit = 3;
          sv_lane_stall_limit = 8192;
          sv_crash_at = [];
          sv_wedge_at = [];
        }
        (Workload.of_trace ~streams:4 trace)
    in
    let counters =
      List.filter_map
        (fun name ->
          if String.length name > 7 && String.sub name 0 7 = "target." then
            Some (name, Stats.counter stats name)
          else None)
        (List.sort compare (Stats.counter_names stats))
    in
    ( Service.report_to_string rep.Serve.sr_service,
      rep.Serve.sr_answered,
      rep.Serve.sr_lost,
      counters )
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check_bool "domains=2 identical to domains=1" true (r1 = r2);
  check_bool "domains=4 identical to domains=1" true (r1 = r4);
  let _, answered, lost, counters = r1 in
  check_int "every event answered" 280 answered;
  check_int "no event lost" 0 lost;
  check_bool "avx512 counters present after upgrade" true
    (List.mem_assoc "target.avx512.invocations" counters)

let () =
  Alcotest.run "targets_wide"
    [
      ( "resolve",
        [ Alcotest.test_case "late-bound VL resolution" `Quick resolve_case ] );
      ( "sve_vl",
        [
          Alcotest.test_case "suite bit-identity across VLs" `Slow
            sve_vl_identity_case;
          QCheck_alcotest.to_alcotest sve_vl_qcheck;
        ] );
      ( "avx512",
        [
          Alcotest.test_case "masked vs blend emulation" `Slow
            avx512_vs_blend_case;
          Alcotest.test_case "predicated tail emission" `Quick
            masked_tail_case;
        ] );
      ( "rejuvenation",
        [
          Alcotest.test_case "upgrade triggers" `Quick
            upgrade_rejuvenation_case;
          Alcotest.test_case "conservation" `Quick upgrade_conservation_case;
        ] );
      ( "fleet",
        [ Alcotest.test_case "domains determinism" `Slow fleet_domains_case ]
      );
    ]
