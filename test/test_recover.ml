(* Tests for crash-resilient serving: journal frame/checkpoint codec
   round trips (QCheck) with truncation and bit-flip rejection, the
   supervisor's escalation ladder (restart streaks, degraded serving,
   typed shedding), kill-at-every-dispatch-boundary sweeps proving the
   recovered drain report is byte-identical to the crash-free run for
   any --domains, torn-entry-free store merges under crashes, on-disk
   journal verification, and breaker half-open probes landing intact
   through a crashed shard's replay. *)

module Trace = Vapor_runtime.Trace
module Service = Vapor_runtime.Service
module Faults = Vapor_runtime.Faults
module Tiered = Vapor_runtime.Tiered
module Store = Vapor_store.Store
module Ingress = Vapor_serve.Ingress
module Workload = Vapor_serve.Workload
module Serve = Vapor_serve.Serve
module Journal = Vapor_serve.Journal
module Supervisor = Vapor_serve.Supervisor

let sse = Vapor_targets.Sse.target
let fail = Alcotest.fail
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let base_cfg () = Service.default_config ~targets:[ sse ]

let serve_cfg ?(domains = 1) ?(lanes = 2) ?(budget = 8) ?faults
    ?(threshold = 3) ?(cooldown = 1_000_000) ?(max_batch = 1)
    ?(batch_window = 1024) ?(checkpoint_every = 0) ?journal_dir
    ?(restart_limit = 3) ?(lane_stall_limit = 8192) ?(crash_at = [])
    ?(wedge_at = []) cfg =
  {
    Serve.sv_service = cfg;
    sv_domains = domains;
    sv_lanes = lanes;
    sv_budget = budget;
    sv_backlog = None;
    sv_faults = faults;
    sv_breaker_threshold = threshold;
    sv_breaker_cooldown = cooldown;
    sv_max_batch = max_batch;
    sv_batch_window = batch_window;
    sv_checkpoint_every = checkpoint_every;
    sv_journal_dir = journal_dir;
    sv_restart_limit = restart_limit;
    sv_lane_stall_limit = lane_stall_limit;
    sv_crash_at = crash_at;
    sv_wedge_at = wedge_at;
  }

let temp_journal_dir () = Filename.temp_dir "vapor_journal" ".test"
let temp_store_dir () = Filename.temp_dir "vapor_recover_store" ".test"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- journal frame codec (QCheck) ---------------------------------------- *)

let frame_to_string = function
  | Journal.Admit a ->
    Printf.sprintf "Admit{seq=%d;at=%d;index=%d;kernel=%S;target=%d;scale=%d}"
      a.f_seq a.f_at a.f_index a.f_kernel a.f_target a.f_scale
  | Journal.Complete c ->
    Printf.sprintf "Complete{seq=%d;flags=%d}" c.f_seq c.f_flags
  | Journal.Mark m -> Printf.sprintf "Mark{ckpt=%d;at=%d}" m.f_ckpt m.f_at

let frame_gen =
  QCheck.Gen.(
    let small_str = string_size ~gen:printable (int_bound 12) in
    oneof
      [
        map
          (fun (seq, at, index, kernel, target, scale) ->
            Journal.Admit
              {
                f_seq = seq;
                f_at = at;
                f_index = index;
                f_kernel = kernel;
                f_target = target;
                f_scale = scale;
              })
          (tup6 (int_bound 1_000_000) (int_bound 1_000_000)
             (int_bound 10_000) small_str (int_bound 7) (int_bound 64));
        map
          (fun (seq, flags) -> Journal.Complete { f_seq = seq; f_flags = flags })
          (tup2 (int_bound 1_000_000) (int_bound 7));
        map
          (fun (ckpt, at) -> Journal.Mark { f_ckpt = ckpt; f_at = at })
          (tup2 (int_bound 1_000) (int_bound 1_000_000));
      ])

let frame_arb = QCheck.make ~print:frame_to_string frame_gen

let frames_arb =
  QCheck.make
    ~print:(fun fs -> String.concat "; " (List.map frame_to_string fs))
    QCheck.Gen.(list_size (int_bound 8) frame_gen)

let prop_frame_roundtrip =
  QCheck.Test.make ~count:300 ~name:"frame codec round trips" frame_arb
    (fun f -> Journal.decode_frames (Journal.encode_frame f) = Ok [ f ])

let prop_segment_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame sequences round trip" frames_arb
    (fun fs ->
      let body = String.concat "" (List.map Journal.encode_frame fs) in
      Journal.decode_frames body = Ok fs)

let prop_rejects_truncation =
  QCheck.Test.make ~count:200 ~name:"torn frame tail rejected" frame_arb
    (fun f ->
      let s = Journal.encode_frame f in
      match Journal.decode_frames (String.sub s 0 (String.length s - 1)) with
      | Error _ -> true
      | Ok _ -> false)

let prop_rejects_bitflip =
  QCheck.Test.make ~count:200 ~name:"flipped payload byte rejected" frame_arb
    (fun f ->
      let s = Bytes.of_string (Journal.encode_frame f) in
      let last = Bytes.length s - 1 in
      Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 0xff));
      match Journal.decode_frames (Bytes.to_string s) with
      | Error _ -> true
      | Ok _ -> false)

(* --- checkpoint artifact codec ------------------------------------------- *)

let sample_checkpoint =
  {
    Journal.ck_shard = 1;
    ck_ckpt = 3;
    ck_at = 8192;
    ck_cache_rows =
      [ ("d1", "sse", "mono", 128, 7); ("d2", "sse", "mono", 64, 9) ];
    ck_tier_rows =
      [ ("saxpy_fp", "sse", "jit", 42, false); ("sfir_fp", "sse", "interp", 3, true) ];
    ck_counters = [ ("cache.hits", 9); ("tier.promotions", 2) ];
    ck_breaker_open = 1;
  }

let checkpoint_codec_case () =
  let s = Journal.encode_checkpoint sample_checkpoint in
  (match Journal.decode_checkpoint s with
  | Ok ck -> check_bool "artifact round trips" true (ck = sample_checkpoint)
  | Error m -> fail ("decode_checkpoint: " ^ m));
  (match Journal.decode_checkpoint (String.sub s 0 (String.length s - 1)) with
  | Error _ -> ()
  | Ok _ -> fail "torn artifact accepted");
  let flipped = Bytes.of_string s in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last
    (Char.chr (Char.code (Bytes.get flipped last) lxor 0xff));
  (match Journal.decode_checkpoint (Bytes.to_string flipped) with
  | Error _ -> ()
  | Ok _ -> fail "flipped artifact accepted");
  match Journal.decode_checkpoint ("XXXX" ^ String.sub s 4 (String.length s - 4)) with
  | Error _ -> ()
  | Ok _ -> fail "bad magic accepted"

(* --- supervisor escalation ladder (unit level) --------------------------- *)

let escalation_ladder_case () =
  let pool = Service.pool_create (base_cfg ()) ~kernels:[ "saxpy_fp" ] in
  let sv = Supervisor.create ~restart_limit:1 ~crash_plan:[ 0; 1; 2 ] pool in
  check_bool "crash 1: restart inside the limit serves normally" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:0 = Supervisor.Run);
  check_bool "still active after one restart" true
    (Supervisor.shard_mode sv ~shard:0 = `Active);
  check_bool "crash 2 in probation: degraded to interp-only" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:10 = Supervisor.Run_interp_only);
  check_bool "mode is degraded" true
    (Supervisor.shard_mode sv ~shard:0 = `Degraded);
  check_bool "crash while degraded: shard sheds" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:20 = Supervisor.Shed);
  check_bool "mode is shedding" true
    (Supervisor.shard_mode sv ~shard:0 = `Shedding);
  check_bool "shedding is permanent" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:1_000_000 = Supervisor.Shed);
  check_int "three crashes recorded" 3 (Supervisor.crashes sv);
  check_int "three checkpoint restores" 3 (Supervisor.restarts sv)

let degraded_heal_case () =
  let pool = Service.pool_create (base_cfg ()) ~kernels:[ "saxpy_fp" ] in
  let sv = Supervisor.create ~restart_limit:1 ~crash_plan:[ 0; 1 ] pool in
  check_bool "first crash tolerated" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:0 = Supervisor.Run);
  check_bool "second crash degrades" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:10 = Supervisor.Run_interp_only);
  check_bool "degraded window serves interp-only" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:100 = Supervisor.Run_interp_only);
  (* The degraded window is backoff_base * 2^restart_limit cycles wide:
     once it lapses without a crash, the shard heals to full service. *)
  check_bool "lapsed window heals to normal serving" true
    (Supervisor.on_dispatch sv ~shard:0 ~now:100_000 = Supervisor.Run);
  check_bool "healed shard is active" true
    (Supervisor.shard_mode sv ~shard:0 = `Active)

(* --- kill at every dispatch boundary: byte-identical recovery ------------- *)

let kill_sweep_case () =
  let trace = Trace.standard ~length:48 ~n_targets:1 () in
  let run ~domains ~crash_at =
    Serve.run
      (serve_cfg ~domains ~checkpoint_every:64 ~crash_at (base_cfg ()))
      (Workload.of_trace ~streams:4 trace)
  in
  (* Recovery machinery alone (supervisor on, no crashes) must not move
     the report off the recovery-free baseline. *)
  let plain =
    Serve.report_to_string
      (Serve.run (serve_cfg ~domains:2 (base_cfg ()))
         (Workload.of_trace ~streams:4 trace))
  in
  let baseline = run ~domains:2 ~crash_at:[] in
  check_string "supervised == unsupervised, byte-identical" plain
    (Serve.report_to_string baseline);
  check_bool "periodic checkpoints actually ran" true
    (baseline.Serve.sr_checkpoints > 1);
  (* Kill shard at every dispatch ordinal in turn: each recovered run
     must print byte-identically to the crash-free one. *)
  let baseline_str = Serve.report_to_string baseline in
  for k = 0 to 47 do
    let rep = run ~domains:2 ~crash_at:[ k ] in
    check_string (Printf.sprintf "domains=2 kill@%d recovers identically" k)
      baseline_str
      (Serve.report_to_string rep);
    check_int (Printf.sprintf "kill@%d: one crash" k) 1 rep.Serve.sr_crashes;
    check_int (Printf.sprintf "kill@%d: one restart" k) 1 rep.Serve.sr_restarts
  done;
  (* Spot-check the other domain counts across the sweep. *)
  List.iter
    (fun domains ->
      let base = Serve.report_to_string (run ~domains ~crash_at:[]) in
      List.iter
        (fun k ->
          let rep = run ~domains ~crash_at:[ k ] in
          check_string
            (Printf.sprintf "domains=%d kill@%d recovers identically" domains k)
            base
            (Serve.report_to_string rep))
        [ 0; 7; 19; 23; 31; 42; 47 ])
    [ 1; 4 ]

let multi_kill_case () =
  (* Several kills in one run, spread across shards.  The long
     checkpoint period keeps the journal suffix non-empty, so every
     recovery actually replays completed work. *)
  let trace = Trace.standard ~length:60 ~n_targets:1 () in
  let run crash_at =
    Serve.run
      (serve_cfg ~domains:4 ~checkpoint_every:1_000_000 ~crash_at
         (base_cfg ()))
      (Workload.of_trace ~streams:4 trace)
  in
  let baseline = Serve.report_to_string (run []) in
  let rep = run [ 3; 11; 26; 40; 55 ] in
  check_string "five kills, still byte-identical" baseline
    (Serve.report_to_string rep);
  check_int "five crashes" 5 rep.Serve.sr_crashes;
  check_int "five restarts" 5 rep.Serve.sr_restarts;
  check_bool "journal suffixes were replayed" true (rep.Serve.sr_replayed > 0);
  check_int "nothing lost" 0 rep.Serve.sr_lost

(* --- crashes never tear the sharded store merge --------------------------- *)

let store_merge_integrity_case () =
  let dir = temp_store_dir () in
  let store =
    match Store.open_store ~create:true dir with
    | Ok s -> s
    | Error m -> fail ("open_store: " ^ m)
  in
  let cfg = { (base_cfg ()) with Service.cfg_store = Some store } in
  let trace = Trace.standard ~length:60 ~n_targets:1 () in
  let rep =
    Serve.run
      (serve_cfg ~domains:2 ~checkpoint_every:64 ~crash_at:[ 3; 17; 41 ] cfg)
      (Workload.of_trace ~streams:4 trace)
  in
  check_int "three crashes recovered" 3 rep.Serve.sr_crashes;
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  check_bool "the merge published entries" true (Store.entry_count store > 0);
  check_int "no torn entries in the merged store" 0
    (List.length (Store.verify store));
  (* A fresh open (the crash-consistency path) sees the same clean store. *)
  match Store.open_store dir with
  | Error m -> fail ("reopen: " ^ m)
  | Ok reopened ->
    check_int "reopened store verifies clean" 0
      (List.length (Store.verify reopened));
    check_int "reopen lost no entries" (Store.entry_count store)
      (Store.entry_count reopened)

(* --- on-disk journal segments verify, and tears are caught ---------------- *)

let journal_disk_case () =
  let dir = temp_journal_dir () in
  let trace = Trace.standard ~length:40 ~n_targets:1 () in
  let wl = Workload.of_trace ~streams:4 trace in
  let rep =
    Serve.run
      (serve_cfg ~domains:2 ~checkpoint_every:64 ~journal_dir:dir
         ~crash_at:[ 9; 21 ] (base_cfg ()))
      wl
  in
  check_int "everything answered through the crashes" (Workload.total wl)
    rep.Serve.sr_answered;
  (match Journal.verify_dir dir with
  | Error m -> fail ("verify_dir on a clean journal: " ^ m)
  | Ok s ->
    check_bool "segments on disk" true (s.Journal.ds_segments > 0);
    check_int "every admission journaled" (Workload.total wl)
      s.Journal.ds_admits;
    check_bool "checkpoint artifacts on disk" true (s.Journal.ds_checkpoints > 0));
  (* Tear the tail off one published segment: verification must fail. *)
  let victim =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".vjl")
    |> List.sort compare |> List.hd |> Filename.concat dir
  in
  let body =
    let ic = open_in_bin victim in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let oc = open_out_bin victim in
  output_string oc (String.sub body 0 (String.length body - 1));
  close_out oc;
  match Journal.verify_dir dir with
  | Error _ -> ()
  | Ok _ -> fail "torn segment passed verification"

(* --- restart-limit escalation: interp-only, then typed shedding ----------- *)

let shedding_escalation_case () =
  let trace = Trace.standard ~length:40 ~n_targets:1 () in
  let wl = Workload.of_trace ~streams:4 ~interval:0 trace in
  let rep =
    Serve.run
      (serve_cfg ~domains:1 ~checkpoint_every:64 ~restart_limit:1
         ~crash_at:(List.init 12 (fun i -> i))
         (base_cfg ()))
      wl
  in
  check_bool "escalation shed typed losses" true (rep.Serve.sr_crash_shed > 0);
  check_int "conservation holds through shedding" 0 rep.Serve.sr_lost;
  check_int "answered + crash-shed covers the workload" (Workload.total wl)
    (rep.Serve.sr_answered + rep.Serve.sr_crash_shed);
  check_bool "shedding is visible in the printed report" true
    (contains ~sub:"resilience:" (Serve.report_to_string rep));
  (* The healthy path never prints the resilience line. *)
  let healthy =
    Serve.run (serve_cfg ~domains:1 (base_cfg ()))
      (Workload.of_trace ~streams:4 trace)
  in
  check_bool "no resilience line without losses" false
    (contains ~sub:"resilience:" (Serve.report_to_string healthy))

(* --- wedged-lane watchdog: typed timeouts, conservation -------------------- *)

let wedge_watchdog_case () =
  let trace = Trace.standard ~length:30 ~n_targets:1 () in
  let run wedge_at =
    Serve.run
      (serve_cfg ~domains:2 ~checkpoint_every:64 ~lane_stall_limit:16
         ~wedge_at (base_cfg ()))
      (Workload.of_trace ~streams:4 trace)
  in
  let rep = run [ 2; 9 ] in
  check_int "two wedges resolved" 2 rep.Serve.sr_wedges;
  check_bool "wedged members closed as typed timeouts" true
    (rep.Serve.sr_lane_stalls > 0);
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  check_bool "stalls visible in the printed report" true
    (contains ~sub:"lane-stalled" (Serve.report_to_string rep));
  (* Deterministic: the same wedge plan prints the same report. *)
  check_string "wedge runs are deterministic"
    (Serve.report_to_string (run [ 2; 9 ]))
    (Serve.report_to_string rep)

(* --- breaker half-open probe lands through a crashed shard's replay ------- *)

let ev i kernel =
  { Trace.ev_index = i; ev_kernel = kernel; ev_target = 0; ev_scale = 2 }

let probe_workload () =
  let streams =
    [|
      Workload.stream ~id:0 ~queue_cap:8 ~deadline:1 ();
      Workload.stream ~id:1 ~queue_cap:8 ();
    |]
  in
  (* Same shape as test_serve's breaker walk: s0 floods two events at
     t=0 through one lane so the second busts its 1-cycle budget and
     opens the breaker (threshold 1); s1 then serves one event degraded
     inside the cooldown, one half-open probe after it, one normal. *)
  let events =
    [
      (0, 0, 0, "saxpy_fp");
      (0, 1, 0, "saxpy_fp");
      (40_000, 2, 1, "saxpy_fp");
      (200_000, 3, 1, "saxpy_fp");
      (300_000, 4, 1, "saxpy_fp");
    ]
  in
  let seqs = Array.make (Array.length streams) 0 in
  let arrivals =
    List.map
      (fun (at, seq, sid, kernel) ->
        let k = seqs.(sid) in
        seqs.(sid) <- k + 1;
        {
          Workload.ar_at = at;
          ar_seq = seq;
          ar_stream = sid;
          ar_stream_seq = k;
          ar_event = ev seq kernel;
        })
      events
  in
  {
    Workload.wl_desc = "probe-under-recovery";
    wl_kernels = [ "saxpy_fp" ];
    wl_streams = streams;
    wl_arrivals = Array.of_list arrivals;
  }

let probe_during_replay_case () =
  (* Dispatch ordinals here: 0 = the served flood event, 1 = the
     degraded interp-only serve, 2 = the half-open probe, 3 = the
     post-close normal serve.  Killing the shard at ordinal 2 forces the
     probe through checkpoint restore + journal replay; batching is on,
     so the probe must still bypass formation and land its verdict. *)
  let run crash_at =
    Serve.run
      (serve_cfg ~lanes:1 ~budget:1 ~threshold:1 ~cooldown:50_000
         ~max_batch:4 ~checkpoint_every:16_384 ~crash_at (base_cfg ()))
      (probe_workload ())
  in
  let baseline = run [] in
  let rep = run [ 2 ] in
  check_int "crash recovered" 1 rep.Serve.sr_crashes;
  check_int "breaker opened once" 1 rep.Serve.sr_breaker_opens;
  check_int "one degraded serve in the cooldown" 1 rep.Serve.sr_interp_only;
  check_int "the probe still fired" 1 rep.Serve.sr_breaker_half_opens;
  check_int "probe forced its oracle check" 1 rep.Serve.sr_probes;
  check_int "clean probe closed the breaker" 1 rep.Serve.sr_breaker_closes;
  check_int "four events answered" 4 rep.Serve.sr_answered;
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  check_string "probe-through-replay run is byte-identical"
    (Serve.report_to_string baseline)
    (Serve.report_to_string rep)

(* --- seeded crash schedules: determinism and conservation ------------------ *)

let seeded_crash_case () =
  let trace = Trace.standard ~length:80 ~n_targets:1 () in
  let run () =
    (* Mirror vaporc's --crash-rate wiring: a crash-only injector, no
       oracle, threaded through the guard (where the supervisor clones
       its private crash stream from) and the serve config. *)
    let f =
      Faults.make
        { Faults.default_spec with Faults.f_seed = 7; f_shard_crash_rate = 0.05 }
    in
    let cfg =
      {
        (base_cfg ()) with
        Service.cfg_guard = { Tiered.no_guard with Tiered.g_faults = Some f };
      }
    in
    Serve.run
      (serve_cfg ~domains:2 ~faults:f ~checkpoint_every:64 cfg)
      (Workload.of_trace ~streams:4 trace)
  in
  let baseline =
    Serve.run
      (serve_cfg ~domains:2 ~checkpoint_every:64 (base_cfg ()))
      (Workload.of_trace ~streams:4 trace)
  in
  let rep = run () in
  check_bool "the seeded schedule crashed at least once" true
    (rep.Serve.sr_crashes > 0);
  check_int "nothing lost" 0 rep.Serve.sr_lost;
  check_string "seeded crashes recover byte-identically"
    (Serve.report_to_string baseline)
    (Serve.report_to_string rep);
  check_string "same seed, same schedule, same report"
    (Serve.report_to_string (run ()))
    (Serve.report_to_string rep)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "recover"
    [
      qsuite "journal codec"
        [
          prop_frame_roundtrip;
          prop_segment_roundtrip;
          prop_rejects_truncation;
          prop_rejects_bitflip;
        ];
      ( "checkpoint codec",
        [
          Alcotest.test_case "artifact round trip and rejection" `Quick
            checkpoint_codec_case;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "escalation ladder to shedding" `Quick
            escalation_ladder_case;
          Alcotest.test_case "degraded window heals" `Quick degraded_heal_case;
        ] );
      ( "recovery identity",
        [
          Alcotest.test_case "kill at every dispatch boundary" `Slow
            kill_sweep_case;
          Alcotest.test_case "multiple kills across shards" `Quick
            multi_kill_case;
          Alcotest.test_case "seeded crash schedule" `Quick seeded_crash_case;
        ] );
      ( "durability",
        [
          Alcotest.test_case "store merge never tears" `Quick
            store_merge_integrity_case;
          Alcotest.test_case "journal segments verify on disk" `Quick
            journal_disk_case;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "restart limit sheds typed losses" `Quick
            shedding_escalation_case;
          Alcotest.test_case "wedged-lane watchdog" `Quick wedge_watchdog_case;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "half-open probe through replay" `Quick
            probe_during_replay_case;
        ] );
    ]
